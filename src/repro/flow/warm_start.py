"""Warm-started minimum-cost-flow solves (cost-only re-solve cache).

Parameter sweeps (energy tables, memory voltage) re-solve the *same*
network topology under perturbed arc costs over and over.  This module
caches, per topology, everything a re-solve can legally reuse and
dispatches each request to the cheapest sound strategy:

* **replay** — identical costs: the cached optimal flow is returned
  verbatim (no solver work at all);
* **incremental** — same topology, different costs: the cached flow is
  still *feasible* (capacities, lower bounds and the shipped value are
  untouched by a cost change), so Klein's condition reduces re-solving to
  cancelling negative reduced-cost cycles in its residual network,
  seeded with the cached node potentials
  (:meth:`~repro.flow.kernel.FlowKernel.reoptimize`); work is
  proportional to how far the perturbation moved the optimum, not to
  instance size — see THEORY.md §7 for the complementary-slackness
  argument;
* **cold** — unknown topology: a full successive-shortest-path solve,
  whose flow/potential/CSR products are stored for next time.

The cache key is a digest of the *topology only* — node and arc counts,
tail/head indices, capacities, lower bounds, terminals and flow value —
never the costs.  A capacity or structure change therefore misses the
cache and falls back to a cold solve automatically; there is no unsound
"almost the same network" path.

Array invariants: cached ``flows`` are ``int64[m]`` per original arc id,
``potential`` is ``float64[n]`` over dense node indices (``inf`` marks
nodes unreachable from the source — permanently so, since augmentation
never creates arcs leaving the reachable set), ``costs`` is the
``float64[m]`` cost column the entry was solved under, and the
:class:`~repro.flow.kernel.ResidualCSR` is shared with every future
kernel over the same topology.

Observability: every call lands in a ``solver.warm_start`` span and
bumps exactly one of ``solver.warm_start.cold`` /
``solver.warm_start.replay`` / ``solver.warm_start.incremental``;
incremental re-solves also report ``warm_start.bf_passes`` and
``warm_start.cycles_canceled``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.exceptions import GraphError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.kernel import FlowKernel, ResidualCSR
from repro.flow.tolerances import COST_MATCH_TOLERANCE
from repro.obs import trace as obs

__all__ = ["WarmStartCache", "solve_warm", "topology_key"]


@dataclass
class _CacheEntry:
    """Reusable products of one solved (topology, costs) instance."""

    csr: ResidualCSR
    flows: np.ndarray
    potential: np.ndarray
    costs: np.ndarray


class WarmStartCache:
    """Bounded store of prior solves, keyed by :func:`topology_key`.

    One cache may serve many instances at once (a whole design-space
    sweep): each distinct topology — e.g. each register count, or the
    lower-bound transform of each forced-segment set — owns its own
    entry, and cost-only perturbations of any of them warm-start against
    it.  Eviction is insertion-ordered (FIFO) once ``max_entries`` is
    reached; correctness never depends on an entry being present.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: dict[str, _CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> _CacheEntry | None:
        """The entry stored under *key*, or ``None``."""
        return self._entries.get(key)

    def put(self, key: str, entry: _CacheEntry) -> None:
        """Store *entry* under *key*, evicting the oldest entry if full."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = entry


def topology_key(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
) -> str:
    """Digest of everything about an instance *except* its costs.

    Two instances share a key iff they have identical node/arc counts,
    arc endpoints (as dense indices, i.e. identical construction order),
    capacities, lower bounds, terminals and flow value — exactly the
    precondition under which a cached flow remains feasible and a cached
    CSR remains valid.
    """
    arrays = network.arrays()
    digest = hashlib.sha256()
    meta = np.array(
        [
            network.num_nodes,
            network.num_arcs,
            network.node_index(source),
            network.node_index(sink),
            flow_value,
        ],
        dtype=np.int64,
    )
    digest.update(meta.tobytes())
    digest.update(arrays.tails.tobytes())
    digest.update(arrays.heads.tobytes())
    digest.update(arrays.capacities.tobytes())
    digest.update(arrays.lowers.tobytes())
    return digest.hexdigest()


def solve_warm(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    flow_value: int,
    cache: WarmStartCache,
) -> FlowResult:
    """Ship *flow_value* units at minimum cost, reusing *cache*.

    Same contract as :func:`repro.flow.ssp.solve_min_cost_flow` (no
    lower bounds — callers transform them away first) and bit-identical
    results: warm starts change the amount of work, never the optimum.
    The cache is updated in place with this solve's products.
    """
    if flow_value < 0:
        raise GraphError(f"flow value must be non-negative, got {flow_value}")
    if not network.has_node(source) or not network.has_node(sink):
        raise GraphError("source or sink is not a node of the network")
    if network.has_lower_bounds():
        raise GraphError(
            "network has lower-bounded arcs; use solve_with_lower_bounds()"
        )
    s = network.node_index(source)
    t = network.node_index(sink)
    if flow_value == 0 or s == t:
        return FlowResult(network, [0] * network.num_arcs, 0)

    key = topology_key(network, source, sink, flow_value)
    entry = cache.get(key)
    costs = network.arrays().costs
    with obs.span("solver.warm_start"):
        if entry is None:
            kernel = FlowKernel(network)
            flows, potential, _ = kernel.solve(
                s, t, flow_value, labels=(source, sink)
            )
            obs.count("solver.warm_start.cold")
        elif (
            float(np.max(np.abs(entry.costs - costs), initial=0.0))
            <= COST_MATCH_TOLERANCE
        ):
            obs.count("solver.warm_start.replay")
            return FlowResult(network, entry.flows.tolist(), flow_value)
        else:
            kernel = FlowKernel(network, csr=entry.csr)
            kernel.load_flows(entry.flows)
            flows, potential, stats = kernel.reoptimize(entry.potential)
            obs.count("solver.warm_start.incremental")
            obs.count("warm_start.bf_passes", stats.bf_passes)
            obs.count("warm_start.cycles_canceled", stats.cancellations)
        cache.put(
            key,
            _CacheEntry(
                csr=kernel.csr,
                flows=flows.copy(),
                potential=np.asarray(potential, dtype=np.float64).copy(),
                costs=costs.copy(),
            ),
        )
    return FlowResult(network, flows.tolist(), flow_value)
