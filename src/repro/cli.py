"""Command-line interface: ``repro-alloc``.

Subcommands:

* ``demo`` — allocate a built-in kernel and print the full pipeline
  summary;
* ``compare`` — flow allocator vs all baselines on a kernel;
* ``table1`` — the paper's table-1 sweep on the RSP application;
* ``figures`` — the figure-3 and figure-4 worked examples;
* ``chart`` — ASCII lifetime chart of a kernel's allocation;
* ``diagnose`` — feasibility analysis under a restricted memory;
* ``offsets`` — SOA/MOA offset assignment for the memory traffic;
* ``explore`` — design-space grid over register counts and memory
  operating points;
* ``lint`` — pre-solve static analysis of an instance: run the
  :mod:`repro.lint` rule set (RA1xx–RA6xx, including the dataflow /
  feasibility-proof family) over a paper example or kernel without
  solving, print text/JSON findings, optionally export SARIF 2.1.0, and
  exit non-zero at a configurable severity threshold (unknown
  ``--fail-on`` names fail closed as ``error``); ``--list-rules`` and
  ``--explain CODE`` document the rule set from the registry;
* ``profile`` — run the full pipeline on a workload under tracing and
  emit a run report (JSON by default) with per-stage wall times and
  solver counters (see :mod:`repro.obs`);
* ``fuzz`` — seeded differential fuzzing of the allocator: random
  instances through the oracle battery, solver cross-checks and baseline
  dominance, with greedy shrinking of any failure into a minimal
  reproducer (see :mod:`repro.verify`);
* ``dag`` — whole-application allocation: partition a registered task
  graph onto cores under a frame deadline, co-optimise a per-partition
  DVFS operating point (cheapest supply meeting the CMOS delay-slack
  relation within the deadline), fan the per-block flow solves out
  through the batch executor with certificates on, reconcile the
  roll-up with the ``dag_reconciliation`` oracle, and emit a versioned
  ``repro.dag/report/v1`` document (``--emit-manifest`` additionally
  writes the batch as a replayable v2 manifest; see :mod:`repro.dag`);
* ``batch`` — solve a manifest of instances through the batch service:
  canonical-form result cache (in-memory + optional on-disk), parallel
  workers with per-job timeouts, retry with exponential backoff and the
  SSP → cycle-cancelling → two-phase fallback ladder, emitting a
  versioned batch report and (``--sarif``) a merged multi-run SARIF log
  with one run per job (see :mod:`repro.service`);
* ``serve`` — run the long-lived allocation server: an HTTP gateway
  accepting manifest documents on ``POST /v1/batch`` (and lint-only
  submissions on ``POST /v1/lint``) with admission-time lint gating
  (provably-bad manifests rejected 422 with SARIF evidence before
  queueing), a bounded admission queue, per-client rate limiting,
  explicit 503 load shedding, a sharded persistent result cache,
  warm-started sweep re-solves, ``/healthz`` + ``/metrics``, and
  graceful drain on SIGTERM (see :mod:`repro.service.server`).

Examples::

    repro-alloc demo --kernel fir --taps 8 --registers 4
    repro-alloc compare --kernel ewf --registers 6 --model activity
    repro-alloc table1
    repro-alloc lint fig3 --sarif fig3.sarif
    repro-alloc lint fir --divisor 2 --fail-on warning
    repro-alloc lint --explain RA601
    repro-alloc batch examples/manifests/paper.json --sarif batch.sarif
    repro-alloc profile fir --taps 8 -R 4
    repro-alloc profile ewf --format table
    repro-alloc fuzz --seed 0 --iters 100 -o fuzz-report.json
    repro-alloc batch examples/manifests/paper.json --workers 4
    repro-alloc dag diamond --cores 2 --slack 1.5 --format json
    repro-alloc dag fanin --emit-manifest out/fanin-batch
    repro-alloc serve --port 8713 --cache-dir serve-cache --rate 50
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis import compare_allocators, format_table, improvement_factor
from repro.baselines import two_phase_allocate
from repro.core import AllocationProblem, allocate, allocate_block
from repro.energy import (
    ActivityEnergyModel,
    MemoryConfig,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.energy.voltage import max_divisor_supply
from repro.exceptions import InfeasibleFlowError
from repro.ir.basic_block import BasicBlock
from repro.lifetimes import extract_lifetimes
from repro.scheduling import list_schedule
from repro.workloads import (
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure3_lifetimes,
    figure4_lifetimes,
    rsp_schedule,
)
from repro.workloads.registry import (
    DAG_NAMES,
    KERNEL_NAMES,
    dag_workload,
    figure_example,
    kernel_block,
)

__all__ = ["main"]


def _kernel(args: argparse.Namespace) -> BasicBlock:
    """Build the kernel named by the parsed arguments (shared registry)."""
    return kernel_block(args.kernel, taps=args.taps, seed=args.seed)


def _write_output(path: str, text: str, what: str) -> int:
    """Write *text* to *path* (or stdout for ``-``); returns exit code.

    The shared output tail of every report-emitting subcommand (lint
    ``--sarif``, profile, fuzz, batch): file errors become a message on
    stderr and exit code 1 instead of a traceback.
    """
    if path and path != "-":
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"cannot write {path}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {what} to {path}")
    else:
        sys.stdout.write(text)
    return 0


def _model(name: str):
    if name == "static":
        return StaticEnergyModel()
    return ActivityEnergyModel()


def _solve_options(args: argparse.Namespace) -> "SolveOptions":
    """Fold the shared CLI flags into a :class:`SolveOptions`.

    The ``--banks`` family describes an interleaved multi-bank storage
    hierarchy (see :meth:`repro.core.StorageSpec.banked`); without it
    the options carry no storage override and solves stay on the
    classic two-level path.
    """
    from repro.core import SolveOptions, StorageSpec

    storage = None
    if getattr(args, "banks", None):
        storage = StorageSpec.banked(
            args.banks,
            args.bank_period,
            ports=args.bank_ports,
            capacity=args.bank_capacity,
            stagger=not args.no_stagger,
        )
    return SolveOptions(storage=storage)


def _add_bank_flags(p: argparse.ArgumentParser) -> None:
    """The multi-bank storage flags shared by solving subcommands."""
    p.add_argument(
        "--banks",
        type=int,
        default=0,
        help="solve against an interleaved multi-bank memory with this "
        "many banks (0 = classic two-level model; default: 0)",
    )
    p.add_argument(
        "--bank-period",
        type=int,
        default=2,
        help="per-bank access period in control steps (default: 2)",
    )
    p.add_argument(
        "--bank-ports",
        type=int,
        default=None,
        help="per-bank port width (default: unlimited)",
    )
    p.add_argument(
        "--bank-capacity",
        type=int,
        default=None,
        help="per-bank location capacity (default: unbounded)",
    )
    p.add_argument(
        "--no-stagger",
        action="store_true",
        help="give all banks the same access offset instead of "
        "interleaving them across the period",
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    block = _kernel(args)
    result = allocate_block(
        block, register_count=args.registers, options=_solve_options(args)
    )
    print(result.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    block = _kernel(args)
    schedule = list_schedule(block)
    lifetimes = extract_lifetimes(schedule)
    comparison = compare_allocators(
        lifetimes,
        schedule.length,
        args.registers,
        _model(args.model),
    )
    print(comparison.format(title=f"{block.name} with R={args.registers}"))
    best = comparison.best_baseline()
    print(
        f"improvement over best baseline ({best.name}): "
        f"{improvement_factor(best, comparison.flow):.2f}x"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    schedule = rsp_schedule(rng=random.Random(args.seed))
    rows = []
    results = []
    for divisor in (1, 2, 4):
        voltage = round(max_divisor_supply(divisor), 2)
        model = ActivityEnergyModel().with_voltages(voltage, 5.0)
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=args.registers,
            energy_model=model,
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        results.append((divisor, voltage, allocate(problem)))
    base = results[-1][2].objective
    for divisor, voltage, allocation in results:
        rows.append(
            (
                f"f/{divisor}",
                voltage,
                allocation.report.mem_accesses,
                allocation.report.reg_accesses,
                allocation.objective / base,
            )
        )
    print(
        format_table(
            ("memory freq", "supply V", "mem acc", "reg acc", "relative E"),
            rows,
            title="Table 1 — RSP application (activity model)",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    for label, lifetimes, horizon, activities in (
        ("figure 3", figure3_lifetimes(), FIGURE3_HORIZON, FIGURE3_ACTIVITIES),
        ("figure 4", figure4_lifetimes(), FIGURE4_HORIZON, FIGURE4_ACTIVITIES),
    ):
        model = PairwiseSwitchingModel(activities)
        baseline = two_phase_allocate(
            lifetimes, horizon, 1, model,
            binding_style="all_pairs", partition_rule="max_switching",
        )
        problem = AllocationProblem(lifetimes, 1, horizon, energy_model=model)
        flow = allocate(problem)
        print(
            f"{label}: two-phase E={baseline.objective:.2f} "
            f"(mem accesses {baseline.report.mem_accesses}) vs "
            f"simultaneous E={flow.objective:.2f} "
            f"(mem accesses {flow.report.mem_accesses}) -> "
            f"{improvement_factor(baseline, flow):.2f}x"
        )
    return 0


def _cmd_chart(args: argparse.Namespace) -> int:
    from repro.analysis import allocation_chart
    from repro.core import allocate

    block = _kernel(args)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(
        schedule, register_count=args.registers, energy_model=_model(args.model)
    )
    print(allocation_chart(allocate(problem)))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core import diagnose

    block = _kernel(args)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=args.registers,
        memory=MemoryConfig(
            divisor=args.divisor, voltage=max_divisor_supply(args.divisor)
        ),
    )
    report = diagnose(problem)
    print(report.summary())
    return 0 if report.feasible else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.analysis import explore_design_space
    from repro.lifetimes import max_density

    block = _kernel(args)
    schedule = list_schedule(block)
    lifetimes = extract_lifetimes(schedule)
    density = max_density(lifetimes.values(), schedule.length)
    registers = sorted(
        {max(1, density // 4), max(1, density // 2), density}
    )
    if args.banks:
        from repro.analysis import banked_grid, explore_storage_space

        grid = banked_grid(
            bank_counts=range(1, args.banks + 1),
            periods=sorted({1, args.bank_period}),
            port_widths=(
                (None,)
                if args.bank_ports is None
                else (None, args.bank_ports)
            ),
            capacity=args.bank_capacity,
            stagger=not args.no_stagger,
        )
        result = explore_storage_space(
            lifetimes,
            schedule.length,
            register_counts=registers,
            storage_specs=grid,
            energy_model=_model(args.model),
        )
        print(result.format())
        best = result.best()
        print(f"best point: {best.label()} at energy {best.energy:.1f}")
        return 0
    configs = [
        MemoryConfig(
            divisor=d, voltage=round(max_divisor_supply(d), 2)
        )
        for d in (1, 2, 4)
    ]
    result = explore_design_space(
        lifetimes,
        schedule.length,
        register_counts=registers,
        memory_configs=configs,
        energy_model=_model(args.model),
    )
    print(result.format())
    best = result.best()
    print(f"best point: {best.label()} at energy {best.energy:.1f}")
    frontier = ", ".join(p.label() for p in result.pareto_frontier())
    print(f"pareto frontier (locations vs energy): {frontier}")
    return 0


def _cmd_offsets(args: argparse.Namespace) -> int:
    from repro.core import allocate
    from repro.moa import (
        access_sequence,
        moa_assign,
        sequence_cost,
        soa_liao,
        soa_naive,
    )

    block = _kernel(args)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(
        schedule, register_count=args.registers, energy_model=_model(args.model)
    )
    sequence = access_sequence(allocate(problem))
    if not sequence:
        print("no memory traffic: nothing to assign")
        return 0
    naive = sequence_cost(sequence, soa_naive(sequence))
    liao = sequence_cost(sequence, soa_liao(sequence))
    print(f"access sequence ({len(sequence)} accesses): {' '.join(sequence)}")
    print(f"AR update cost: naive {naive:.2f}, Liao SOA {liao:.2f}")
    for k in (2, 4):
        result = moa_assign(sequence, k)
        print(f"MOA with {k} address registers: {result.cost:.2f}")
    return 0


#: Lintable workloads: the paper's worked examples (pre-built lifetime
#: sets, no schedule), every synthesised kernel (scheduled, so the
#: RA1xx schedule rules participate), and the registered task graphs
#: (linted per task, findings merged).
_LINT_WORKLOADS = (
    "fig1",
    "fig3",
    "fig4",
    "fir",
    "iir",
    "ewf",
    "dct",
    "rsp",
    "random",
) + DAG_NAMES


def _lint_target(args: argparse.Namespace):
    """Build the (problem, schedule, label) triple the lint run analyses."""
    from repro.lifetimes import max_density

    memory = MemoryConfig()
    model = _model(args.model)
    if args.divisor > 1:
        memory = MemoryConfig.scaled(args.divisor)
        # Keep the energy model at the same operating point as the
        # memory so RA405 checks the user's instance, not our defaults.
        model = model.with_voltages(memory.voltage, model.reg_voltage)

    if args.workload in ("fig1", "fig3", "fig4"):
        lifetimes, horizon, activities = figure_example(args.workload)
        if activities is not None:
            model = PairwiseSwitchingModel(activities)
            if args.divisor > 1:
                model = model.with_voltages(memory.voltage, model.reg_voltage)
        registers = args.registers
        if registers is None:
            registers = max_density(lifetimes.values(), horizon)
        problem = AllocationProblem(
            lifetimes,
            registers,
            horizon,
            energy_model=model,
            memory=memory,
        )
        return problem, None, f"{args.workload} (R={registers})"

    args.kernel = args.workload
    block = _kernel(args)
    schedule = list_schedule(block)
    registers = args.registers
    if registers is None:
        lifetimes = extract_lifetimes(schedule)
        registers = max_density(lifetimes.values(), schedule.length)
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=registers,
        energy_model=model,
        memory=memory,
    )
    return problem, schedule, f"{block.name} (R={registers})"


def _lint_dag(args: argparse.Namespace, config, threshold) -> int:
    """Lint every task of a registered task graph; merge the findings.

    One lint run per task (each task's block is scheduled, so the
    schedule-aware rules participate), rendered sequentially in text
    mode, as a task-name-keyed object in JSON mode, and as one
    multi-run SARIF log under ``--sarif``.
    """
    import json as _json

    from repro.lifetimes import max_density
    from repro.lint import render_text, report_to_json, run_lint
    from repro.lint.sarif import merged_sarif_to_json

    graph = dag_workload(args.workload, seed=args.seed)
    memory = MemoryConfig()
    model = _model(args.model)
    if args.divisor > 1:
        memory = MemoryConfig.scaled(args.divisor)
        model = model.with_voltages(memory.voltage, model.reg_voltage)
    order = graph.topological_order()
    assert order is not None  # registry graphs are acyclic
    entries = []
    texts = []
    json_runs: dict[str, object] = {}
    failed = False
    for task in order:
        schedule = list_schedule(task.block)
        registers = args.registers
        if registers is None:
            lifetimes = extract_lifetimes(schedule)
            registers = max_density(lifetimes.values(), schedule.length)
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=registers,
            energy_model=model,
            memory=memory,
        )
        report = run_lint(problem, schedule=schedule, config=config)
        label = f"{args.workload}:{task.name} (R={registers})"
        entries.append((report, {"task": task.name}))
        texts.append(render_text(report, title=f"lint {label}"))
        json_runs[task.name] = _json.loads(report_to_json(report))
        if threshold is not None and report.at_least(threshold):
            failed = True
    if args.format == "json":
        sys.stdout.write(
            _json.dumps(json_runs, indent=2, sort_keys=True) + "\n"
        )
    else:
        sys.stdout.write("".join(texts))
    if args.sarif:
        code = _write_output(
            args.sarif, merged_sarif_to_json(entries), "merged SARIF report"
        )
        if code:
            return code
    return 1 if failed else 0


def _lint_options(items) -> "tuple[dict[str, dict[str, object]], str | None]":
    """Parse repeated ``--option CODE.key=value`` flags.

    Values parse as JSON scalars when possible (so ``0.1`` is a float)
    and fall back to the raw string.  Returns ``(options, error)``.
    """
    import json as _json

    options: dict[str, dict[str, object]] = {}
    for item in items or ():
        spec, sep, raw = item.partition("=")
        code, dot, key = spec.partition(".")
        if not sep or not dot or not code or not key:
            return {}, f"bad --option {item!r} (want CODE.key=value)"
        try:
            value: object = _json.loads(raw)
        except ValueError:
            value = raw
        options.setdefault(code.upper(), {})[key] = value
    return options, None


def _fail_on_threshold(name: str):
    """Coerce a ``--fail-on`` value, warning (stderr) on unknown names.

    Unknown severities fail *closed* to ``error`` — a typo must tighten
    the gate, never silently disable it.  Returns ``None`` for
    ``"never"``.
    """
    from repro.lint import Severity

    if name == "never":
        return None
    threshold = Severity.coerce(name)
    if name.lower() not in ("error", "warning", "note"):
        print(
            f"warning: unknown --fail-on severity {name!r}; "
            f"failing closed to 'error'",
            file=sys.stderr,
        )
    return threshold


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.lint import (
        LintConfig,
        describe_rules,
        explain_rule,
        render_text,
        report_to_json,
        run_lint,
        sarif_to_json,
    )

    if args.list_rules:
        sys.stdout.write(describe_rules() + "\n")
        return 0
    if args.explain:
        try:
            sys.stdout.write(explain_rule(args.explain) + "\n")
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    options, error = _lint_options(args.option)
    if error:
        print(error, file=sys.stderr)
        return 2
    config = LintConfig(
        select=tuple(p for p in (args.select or "").split(",") if p),
        ignore=tuple(p for p in (args.ignore or "").split(",") if p),
        options=options,
    )
    if args.workload in DAG_NAMES:
        return _lint_dag(args, config, _fail_on_threshold(args.fail_on))
    problem, schedule, label = _lint_target(args)
    report = run_lint(problem, schedule=schedule, config=config)
    if args.format == "json":
        sys.stdout.write(report_to_json(report))
    else:
        sys.stdout.write(render_text(report, title=f"lint {label}"))
    if args.sarif:
        code = _write_output(args.sarif, sarif_to_json(report), "SARIF report")
        if code:
            return code
    threshold = _fail_on_threshold(args.fail_on)
    if threshold is None:
        return 0
    return 1 if report.at_least(threshold) else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import format_report, profile_block, report_to_csv, report_to_json

    if args.kernel in DAG_NAMES:
        import time

        from repro.core.task_pipeline import allocate_task_graph
        from repro.obs import build_report, collect

        graph = dag_workload(args.kernel, seed=args.seed)
        start = time.perf_counter()
        with collect() as trace:
            result = allocate_task_graph(
                graph,
                register_count=args.registers,
                energy_model=_model(args.model),
            )
            obs_gauge_energy = result.energy_per_frame
        report = build_report(
            workload=args.kernel,
            trace=trace,
            wall_time_s=time.perf_counter() - start,
            params={
                "workload": args.kernel,
                "tasks": len(graph),
                "registers": args.registers,
                "seed": args.seed,
                "model": args.model,
                "energy_per_frame": obs_gauge_energy,
            },
        )
        if args.format == "table":
            text = format_report(report) + "\n"
        elif args.format == "csv":
            text = report_to_csv(report)
        else:
            text = report_to_json(report)
        return _write_output(args.output, text, f"{args.format} run report")

    block = _kernel(args)
    report = profile_block(
        block,
        register_count=args.registers,
        energy_model=_model(args.model),
        workload=args.kernel,
        params={
            "kernel": args.kernel,
            "registers": args.registers,
            "taps": args.taps,
            "seed": args.seed,
            "model": args.model,
        },
    )
    if args.format == "table":
        text = format_report(report) + "\n"
    elif args.format == "csv":
        text = report_to_csv(report)
    else:
        text = report_to_json(report)
    return _write_output(args.output, text, f"{args.format} run report")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import render_report, run_fuzz

    use_lp = False if args.no_lp else None
    report = run_fuzz(
        args.seed,
        args.iters,
        use_lp=use_lp,
        shrink=not args.no_shrink,
        family=args.family,
    )
    text = render_report(report)
    code = _write_output(args.output, text, "fuzz report")
    if code:
        return code
    statuses = report["statuses"]
    summary = (
        f"fuzz: {report['iterations']} cases, {statuses['ok']} ok, "
        f"{statuses['infeasible']} infeasible, "
        f"{statuses['violation']} violations (seed {args.seed})"
    )
    print(summary, file=sys.stderr)
    return 1 if statuses["violation"] else 0


def _cmd_dag(args: argparse.Namespace) -> int:
    from repro.dag import (
        build_dag_report,
        build_jobs,
        dispatch_blocks,
        emit_manifest,
        partition_graph,
        plan_handoffs,
        render_dag_text,
        report_to_json,
        sweep_operating_points,
    )
    from repro.exceptions import DagError, WorkloadError
    from repro.obs import collect
    from repro.verify import OracleViolation, oracle_dag_reconciliation

    try:
        graph = dag_workload(args.workload, seed=args.seed)
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    model = _model(args.model)
    certify = not args.no_certify
    with collect():
        try:
            plan = partition_graph(
                graph,
                cores=args.cores,
                deadline=args.deadline,
                slack=args.slack,
                energy_model=model,
            )
            handoffs = plan_handoffs(plan, energy_model=model)
            selection = sweep_operating_points(
                plan,
                register_count=args.registers,
                energy_model=model,
                handoff_energy=sum(h.energy for h in handoffs),
            )
            jobs = build_jobs(
                plan, selection, register_count=args.registers,
                energy_model=model,
            )
            results = dispatch_blocks(
                jobs,
                workers=args.workers,
                certify_fraction=1.0 if certify else 0.0,
            )
        except DagError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = build_dag_report(
        plan, selection, handoffs, results, register_count=args.registers
    )
    try:
        oracle_dag_reconciliation(report, require_certified=certify)
    except OracleViolation as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.emit_manifest:
        manifest_path = emit_manifest(
            jobs, args.emit_manifest, graph_name=graph.name
        )
        print(f"wrote batch manifest to {manifest_path}", file=sys.stderr)
    text = (
        report_to_json(report)
        if args.format == "json"
        else render_dag_text(report)
    )
    return _write_output(args.output, text, "dag report")


def _cmd_batch(args: argparse.Namespace) -> int:
    import time

    from repro.exceptions import ServiceError
    from repro.service import (
        BatchExecutor,
        ResultCache,
        build_batch_report,
        load_manifest,
        render_batch_text,
        report_to_json,
    )

    inject: dict[str, int] = {}
    for item in args.inject_fault or ():
        rung, _, budget = item.partition("=")
        try:
            inject[rung] = int(budget) if budget else -1
        except ValueError:
            print(f"bad --inject-fault {item!r}", file=sys.stderr)
            return 2
    try:
        manifest = load_manifest(args.manifest)
        workloads = manifest.build()
        cache = None
        if not args.no_cache:
            cache = ResultCache(directory=args.cache_dir)
        # --sarif needs verdicts for every job, so an admission gate
        # runs even with lint gating off ("never" reports, never blocks).
        lint_gate = None
        if args.sarif is not None or args.lint is not None:
            from repro.service.lintgate import LintGate

            lint_gate = LintGate(cache=cache, fail_on=args.lint or "never")
        executor = BatchExecutor(
            workers=args.workers,
            cache=cache,
            max_retries=args.retries,
            timeout=args.timeout,
            chunksize=args.chunksize,
            lint_gate=lint_gate,
            certify_fraction=args.certify_fraction,
            seed=args.seed,
            inject_faults=inject,
            options=_solve_options(args),
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    results = executor.map_blocks(
        [w.problem for w in workloads],
        ids=[w.label for w in workloads],
        schedules=[w.schedule for w in workloads],
    )
    wall = time.perf_counter() - start
    if args.sarif is not None:
        from repro.lint.sarif import merged_sarif_to_json

        sarif_text = merged_sarif_to_json(
            (v.report, v.run_properties()) for v in executor.lint_verdicts
        )
        code = _write_output(args.sarif, sarif_text, "merged SARIF report")
        if code:
            return code
    report = build_batch_report(
        results,
        cache=cache,
        wall_time_s=wall,
        workers=args.workers,
        manifest=str(args.manifest),
    )
    if args.format == "text":
        text = render_batch_text(report)
    else:
        text = report_to_json(report)
    code = _write_output(args.output, text, "batch report")
    if code:
        return code
    totals = report["totals"]
    print(
        f"batch: {totals['jobs']} jobs, {totals['ok']} ok, "
        f"{totals['failed']} failed, {totals['timeout']} timeout, "
        f"{totals['rejected']} rejected, "
        f"{totals['cached']} cache-served in {wall:.2f}s",
        file=sys.stderr,
    )
    return (
        1
        if totals["failed"] or totals["timeout"] or totals["rejected"]
        else 0
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service.server import ServerConfig, serve

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            queue_capacity=args.queue_capacity,
            rate=args.rate,
            burst=args.burst,
            workers=args.workers,
            cache_dir=args.cache_dir,
            shard_width=args.shard_width,
            timeout=args.timeout,
            retries=args.retries,
            chunksize=args.chunksize,
            lint=args.lint,
            admission_lint=(
                None
                if args.admission_lint == "off"
                else args.admission_lint
            ),
            drain_grace=args.drain_grace,
        )
        return serve(config)
    except (ServiceError, OSError) as exc:
        # Bad tunables or an unbindable address: explain, don't traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-alloc`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-alloc",
        description="Low energy memory and register allocation "
        "(Gebotys, DAC 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kernel", choices=KERNEL_NAMES, default="fir")
        p.add_argument("--taps", type=int, default=8)
        p.add_argument("--registers", "-R", type=int, default=4)
        p.add_argument("--seed", type=int, default=2024)
        p.add_argument(
            "--model", choices=("static", "activity"), default="static"
        )

    demo = sub.add_parser("demo", help="allocate a kernel, print summary")
    add_common(demo)
    _add_bank_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    compare = sub.add_parser("compare", help="flow vs baselines")
    add_common(compare)
    compare.set_defaults(func=_cmd_compare)

    table1 = sub.add_parser("table1", help="the paper's table-1 sweep")
    table1.add_argument("--registers", "-R", type=int, default=16)
    table1.add_argument("--seed", type=int, default=2024)
    table1.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="figure 3 / figure 4 examples")
    figures.set_defaults(func=_cmd_figures)

    chart = sub.add_parser("chart", help="ASCII lifetime chart")
    add_common(chart)
    chart.set_defaults(func=_cmd_chart)

    diagnose_cmd = sub.add_parser(
        "diagnose", help="feasibility under restricted memory"
    )
    add_common(diagnose_cmd)
    diagnose_cmd.add_argument("--divisor", type=int, default=2)
    diagnose_cmd.set_defaults(func=_cmd_diagnose)

    lint = sub.add_parser(
        "lint",
        help="pre-solve static analysis (rule codes RA1xx-RA6xx)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule (code, severity, summary, "
        "options) and exit",
    )
    lint.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print the full documentation of one rule (e.g. RA601) "
        "and exit",
    )
    lint.add_argument(
        "--option",
        action="append",
        metavar="CODE.key=value",
        help="set a per-rule option, e.g. RA604.tolerance=1e-6 "
        "(repeatable)",
    )
    lint.add_argument(
        "workload",
        nargs="?",
        choices=_LINT_WORKLOADS,
        default="fig3",
        help="paper example or kernel to analyse (default: fig3)",
    )
    lint.add_argument(
        "--registers",
        "-R",
        type=int,
        default=None,
        help="register count R (default: the instance's maximum density)",
    )
    lint.add_argument(
        "--divisor",
        type=int,
        default=1,
        help="memory frequency divisor (restricted access times, sec 5.2)",
    )
    lint.add_argument("--taps", type=int, default=8)
    lint.add_argument("--seed", type=int, default=2024)
    lint.add_argument(
        "--model", choices=("static", "activity"), default="static"
    )
    lint.add_argument(
        "--select",
        default="",
        help="comma-separated rule-code prefixes to run (e.g. RA3,RA501)",
    )
    lint.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule-code prefixes to skip",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings format on stdout (default: text)",
    )
    lint.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write a SARIF 2.1.0 report to PATH",
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        help="exit 1 when findings reach this severity: error, warning, "
        "note, or never; unknown names fail closed as error "
        "(default: error)",
    )
    lint.set_defaults(func=_cmd_lint)

    offsets = sub.add_parser("offsets", help="SOA/MOA offset assignment")
    add_common(offsets)
    offsets.set_defaults(func=_cmd_offsets)

    explore = sub.add_parser(
        "explore",
        help="design-space grid (R x memory operating point, or with "
        "--banks a bank count x period x port width storage sweep)",
    )
    add_common(explore)
    _add_bank_flags(explore)
    explore.set_defaults(func=_cmd_explore)

    profile = sub.add_parser(
        "profile",
        help="run a workload under tracing, emit a run report",
    )
    profile.add_argument(
        "kernel",
        nargs="?",
        choices=KERNEL_NAMES + DAG_NAMES,
        default="fir",
        help="workload to profile: a kernel, or a registered task "
        "graph traced through the whole-application pipeline "
        "(default: the quickstart fir kernel)",
    )
    profile.add_argument("--taps", type=int, default=8)
    profile.add_argument("--registers", "-R", type=int, default=4)
    profile.add_argument("--seed", type=int, default=2024)
    profile.add_argument(
        "--model", choices=("static", "activity"), default="static"
    )
    profile.add_argument(
        "--format",
        choices=("json", "table", "csv"),
        default="json",
        help="report format (default: json)",
    )
    profile.add_argument(
        "--output",
        "-o",
        default="-",
        help="write the report to a file instead of stdout",
    )
    profile.set_defaults(func=_cmd_profile)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing with oracle checks and shrinking",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--iters", "-n", type=int, default=100, help="number of fuzz cases"
    )
    fuzz.add_argument(
        "--family",
        choices=("classic", "banked", "dag"),
        default="classic",
        help="case family: classic two-level draws, multi-bank "
        "conflict draws (bank counts x port widths x access periods), "
        "or whole task-graph pipeline runs checked by the report "
        "reconciliation oracle (default: classic)",
    )
    fuzz.add_argument(
        "--no-lp",
        action="store_true",
        help="skip the scipy LP cross-check",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimising them",
    )
    fuzz.add_argument(
        "--output",
        "-o",
        default="-",
        help="write the fuzz report JSON to a file instead of stdout",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    dag = sub.add_parser(
        "dag",
        help="task-graph partitioning + per-partition DVFS, fanned out "
        "through the batch executor",
    )
    dag.add_argument(
        "workload",
        nargs="?",
        choices=DAG_NAMES,
        default="diamond",
        help="registered task graph to allocate (default: diamond)",
    )
    dag.add_argument(
        "--cores",
        type=int,
        default=2,
        help="cores the partitions may occupy (default: 2)",
    )
    dag.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="frame makespan bound in control steps (default: nominal "
        "makespan x --slack)",
    )
    dag.add_argument(
        "--slack",
        type=float,
        default=1.5,
        help="deadline multiplier when --deadline is omitted: the "
        "headroom DVFS converts into voltage scaling (default: 1.5)",
    )
    dag.add_argument("--registers", "-R", type=int, default=4)
    dag.add_argument("--seed", type=int, default=2024)
    dag.add_argument(
        "--model", choices=("static", "activity"), default="static"
    )
    dag.add_argument(
        "--workers",
        type=int,
        default=1,
        help="batch-executor worker processes (default: 1)",
    )
    dag.add_argument(
        "--no-certify",
        action="store_true",
        help="skip the per-block optimality-certificate spot checks",
    )
    dag.add_argument(
        "--emit-manifest",
        metavar="DIR",
        default=None,
        help="also write the per-block batch as a v2 manifest + "
        "instance files under DIR (replayable via 'repro-alloc batch')",
    )
    dag.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    dag.add_argument(
        "--output",
        "-o",
        default="-",
        help="write the report to a file instead of stdout",
    )
    dag.set_defaults(func=_cmd_dag)

    batch = sub.add_parser(
        "batch",
        help="solve a manifest of instances through the cache + "
        "parallel executor",
    )
    batch.add_argument(
        "manifest",
        help="path to a repro.service/manifest/v1 JSON document",
    )
    batch.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes (1 = solve in-process; default: 1)",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache directory (shared between runs)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching entirely",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job time budget in seconds (needs --workers > 1)",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=1,
        help="same-solver retries before falling back (default: 1)",
    )
    batch.add_argument(
        "--chunksize",
        type=int,
        default=1,
        help="jobs dispatched per worker task (default: 1)",
    )
    batch.add_argument(
        "--lint",
        default=None,
        help="admission lint gate severity per job: error, warning, "
        "note or never; blocked jobs report status 'rejected' without "
        "solving; unknown names fail closed as error (default: off)",
    )
    batch.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="write a merged SARIF 2.1.0 log to PATH with one run per "
        "job (lints every job even when --lint is off)",
    )
    batch.add_argument(
        "--certify-fraction",
        type=float,
        default=0.0,
        help="fraction of jobs whose optimality certificate is "
        "spot-checked (seeded sample; default: 0)",
    )
    batch.add_argument("--seed", type=int, default=0)
    _add_bank_flags(batch)
    batch.add_argument(
        "--inject-fault",
        action="append",
        metavar="RUNG[=N]",
        help="chaos-test: force N failures (default: always) of a "
        "solver rung, e.g. ssp=2 (repeatable)",
    )
    batch.add_argument(
        "--format",
        choices=("json", "text"),
        default="json",
        help="batch report format (default: json)",
    )
    batch.add_argument(
        "--output",
        "-o",
        default="-",
        help="write the batch report to a file instead of stdout",
    )
    batch.set_defaults(func=_cmd_batch)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the long-lived allocation server (HTTP gateway over "
        "the batch executor)",
    )
    serve_cmd.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8713,
        help="listen port; 0 picks a free one (default: 8713)",
    )
    serve_cmd.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="admission queue bound in jobs; overflow sheds with 503 "
        "(default: 64)",
    )
    serve_cmd.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client sustained admission rate in jobs/second "
        "(default: unlimited)",
    )
    serve_cmd.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-client burst allowance in jobs (default: max(rate, 1))",
    )
    serve_cmd.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="executor worker processes per request; 1 solves "
        "in-process and keeps the warm-start cache hot (default: 1)",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="sharded on-disk result cache directory (default: "
        "in-memory cache only)",
    )
    serve_cmd.add_argument(
        "--shard-width",
        type=int,
        default=2,
        help="hex digits of the cache shard prefix (default: 2)",
    )
    serve_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job time budget in seconds (needs --workers > 1)",
    )
    serve_cmd.add_argument(
        "--retries",
        type=int,
        default=1,
        help="same-solver retries before falling back (default: 1)",
    )
    serve_cmd.add_argument(
        "--chunksize",
        type=int,
        default=1,
        help="jobs dispatched per worker task (default: 1)",
    )
    serve_cmd.add_argument(
        "--lint",
        choices=("error", "warning", "note"),
        default=None,
        help="pre-solve lint gate severity per job (default: off)",
    )
    serve_cmd.add_argument(
        "--admission-lint",
        default="error",
        help="admission-time lint gate threshold: error, warning, note, "
        "never (lint without rejecting) or off (disable); provably-bad "
        "manifests are rejected 422 with a SARIF body before queueing; "
        "unknown names fail closed as error (default: error)",
    )
    serve_cmd.add_argument(
        "--drain-grace",
        type=float,
        default=60.0,
        help="seconds to wait for in-flight work on shutdown "
        "(default: 60)",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piping into `head`
        return 0
    except InfeasibleFlowError as exc:
        # Any solving subcommand can hit an infeasible instance (e.g. a
        # table1/explore sweep at a too-small R under restricted access
        # times).  Explain the overload instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        if exc.problem is not None:
            from repro.core import diagnose

            print(diagnose(exc.problem).summary(), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
