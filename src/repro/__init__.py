"""repro — Low Energy Memory and Register Allocation Using Network Flow.

A production-quality reproduction of C. H. Gebotys, DAC 1997: simultaneous
partitioning of data variables between an on-chip register file and memory,
combined with register allocation, solved *globally optimally* in
polynomial time as a minimum-cost network flow.

Quickstart::

    from repro import allocate_block, fir_filter

    result = allocate_block(fir_filter(taps=8), register_count=4)
    print(result.summary())

Package map:

* :mod:`repro.core` — the paper's contribution (graphs, costs, solver,
  split lifetimes, memory reallocation, pipeline);
* :mod:`repro.flow` — from-scratch min-cost flow substrate;
* :mod:`repro.ir`, :mod:`repro.scheduling`, :mod:`repro.lifetimes`,
  :mod:`repro.energy` — the substrates Problem 1 stands on;
* :mod:`repro.baselines` — prior-art allocators;
* :mod:`repro.workloads` — paper examples, DSP kernels, the RSP
  application, random generators;
* :mod:`repro.analysis` — metrics and comparison harness;
* :mod:`repro.obs` — structured tracing, solver counters and run
  reports (``repro-alloc profile``).
"""

from repro import obs
from repro.core import (
    Allocation,
    AllocationProblem,
    AllocationResult,
    PipelineResult,
    SolveOptions,
    StorageLevel,
    StorageSpec,
    allocate,
    allocate_block,
    allocate_schedule,
    reallocate_memory,
)
from repro.energy import (
    ActivityEnergyModel,
    MemoryConfig,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.ir import BasicBlock, BlockBuilder, DataVariable, OpCode, Operation
from repro.lifetimes import Lifetime, extract_lifetimes
from repro.scheduling import ResourceSet, Schedule, list_schedule
from repro.workloads import (
    dct4,
    elliptic_wave_filter,
    fir_filter,
    iir_biquad,
    rsp_block,
    rsp_schedule,
)
from repro.workloads.registry import (
    FIGURE_NAMES,
    KERNEL_NAMES,
    figure_example,
    kernel_block,
)

__version__ = "1.0.0"

__all__ = [
    "ActivityEnergyModel",
    "Allocation",
    "AllocationProblem",
    "AllocationResult",
    "BasicBlock",
    "BlockBuilder",
    "DataVariable",
    "FIGURE_NAMES",
    "KERNEL_NAMES",
    "Lifetime",
    "MemoryConfig",
    "OpCode",
    "Operation",
    "PairwiseSwitchingModel",
    "PipelineResult",
    "ResourceSet",
    "Schedule",
    "SolveOptions",
    "StaticEnergyModel",
    "StorageLevel",
    "StorageSpec",
    "__version__",
    "allocate",
    "allocate_block",
    "allocate_schedule",
    "dct4",
    "elliptic_wave_filter",
    "extract_lifetimes",
    "figure_example",
    "fir_filter",
    "iir_biquad",
    "kernel_block",
    "list_schedule",
    "obs",
    "reallocate_memory",
    "rsp_block",
    "rsp_schedule",
]
