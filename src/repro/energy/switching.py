"""Switching-activity estimation for data variables.

The activity-based model (eq. 2) needs inter-variable Hamming distances.
When real traces are unavailable this module generates statistically
plausible ones:

* :func:`uniform_trace` — independent uniform words (activity ≈ 0.5, the
  paper's default assumption);
* :func:`correlated_trace` — lag-1 correlated words, modelling the slowly
  varying samples of DSP front-ends (lower activity);
* :func:`gaussian_dsp_trace` — two's-complement words from a clipped
  Gaussian, modelling filter states: the sign-extension bits rarely flip,
  which is exactly the effect register-allocation-for-low-power papers
  ([8]) exploit;
* :func:`pairwise_activity_table` — the normalised activity table
  (fraction of bits flipping per pair) used by the figure-3/4 style cost
  listings.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Sequence

from repro.exceptions import EnergyModelError
from repro.ir.values import DataVariable, hamming_distance

__all__ = [
    "uniform_trace",
    "correlated_trace",
    "gaussian_dsp_trace",
    "pairwise_activity_table",
    "attach_traces",
]


def uniform_trace(
    rng: random.Random, width: int, samples: int
) -> tuple[int, ...]:
    """Independent uniform *width*-bit words."""
    _check(width, samples)
    mask = (1 << width) - 1
    return tuple(rng.getrandbits(width) & mask for _ in range(samples))


def correlated_trace(
    rng: random.Random,
    width: int,
    samples: int,
    flip_probability: float = 0.15,
) -> tuple[int, ...]:
    """Lag-1 correlated words: each bit flips with *flip_probability*.

    Models sample streams whose successive values are close; activity per
    bit equals *flip_probability* instead of the uncorrelated 0.5.
    """
    _check(width, samples)
    if not 0.0 <= flip_probability <= 1.0:
        raise EnergyModelError(
            f"flip probability {flip_probability} outside [0, 1]"
        )
    value = rng.getrandbits(width)
    out = [value]
    for _ in range(samples - 1):
        flips = 0
        for bit in range(width):
            if rng.random() < flip_probability:
                flips |= 1 << bit
        value ^= flips
        out.append(value)
    return tuple(out)


def gaussian_dsp_trace(
    rng: random.Random,
    width: int,
    samples: int,
    sigma_fraction: float = 0.15,
    rho: float = 0.9,
) -> tuple[int, ...]:
    """Two's-complement words from a lag-correlated (AR(1)) Gaussian.

    ``x[t+1] = rho * x[t] + noise`` — the sampled-signal model of a DSP
    front end.  Consecutive samples stay close (and usually keep their
    sign), so the high / sign-extension bits rarely flip and the switching
    activity concentrates in the low bits — the data profile that makes
    activity-aware allocation profitable ([8]).
    """
    _check(width, samples)
    if sigma_fraction <= 0:
        raise EnergyModelError(f"sigma fraction {sigma_fraction} must be > 0")
    if not 0.0 <= rho < 1.0:
        raise EnergyModelError(f"rho {rho} outside [0, 1)")
    full_scale = 1 << (width - 1)
    sigma = sigma_fraction * full_scale
    innovation = sigma * (1.0 - rho * rho) ** 0.5
    mask = (1 << width) - 1
    value = rng.gauss(0.0, sigma)
    out = []
    for _ in range(samples):
        sample = max(-full_scale, min(full_scale - 1, int(value)))
        out.append(sample & mask)  # two's complement encode
        value = rho * value + rng.gauss(0.0, innovation)
    return tuple(out)


def pairwise_activity_table(
    variables: Iterable[DataVariable],
) -> dict[tuple[str, str], float]:
    """Normalised switching activity for every ordered variable pair.

    Returns ``(v1, v2) -> mean Hamming distance / width`` computed from the
    attached traces; pairs lacking traces are omitted (models fall back to
    their default activity).
    """
    traced = [v for v in variables if v.trace]
    table: dict[tuple[str, str], float] = {}
    for v1 in traced:
        for v2 in traced:
            if v1.name == v2.name:
                continue
            pairs = list(zip(v1.trace, v2.trace))
            if not pairs:
                continue
            mean = sum(hamming_distance(a, b) for a, b in pairs) / len(pairs)
            table[(v1.name, v2.name)] = mean / max(v1.width, v2.width)
    return table


def attach_traces(
    variables: Mapping[str, DataVariable] | Sequence[DataVariable],
    traces: Mapping[str, Sequence[int]],
) -> dict[str, DataVariable]:
    """Return copies of *variables* with traces attached by name."""
    items = (
        variables.values()
        if isinstance(variables, Mapping)
        else variables
    )
    out: dict[str, DataVariable] = {}
    for var in items:
        trace = tuple(traces.get(var.name, var.trace))
        out[var.name] = DataVariable(var.name, var.width, trace)
    return out


def _check(width: int, samples: int) -> None:
    if width < 1:
        raise EnergyModelError(f"width must be >= 1, got {width}")
    if samples < 1:
        raise EnergyModelError(f"samples must be >= 1, got {samples}")
