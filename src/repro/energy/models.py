"""Energy models for storage components.

Implements the two models of section 3:

* :class:`StaticEnergyModel` — eq. (1): fixed per-access read/write energies
  for both the memory and the register file.
* :class:`ActivityEnergyModel` — eq. (2): memory keeps per-access energies,
  but register-file energy is activity based — writing a value ``v2`` into
  a register previously holding ``v1`` dissipates
  ``H(v1, v2) * C_rw^r * Vr^2``.

Both models share the :class:`EnergyModel` interface the cost assignment
and metrics code consume, and both support independent voltage scaling of
the memory and register components (section 5.2 pairs a slowed memory with
a scaled supply).

:class:`PairwiseSwitchingModel` is an activity model whose inter-variable
switching activities are given explicitly, reproducing the cost tables of
figures 3 and 4 of the paper verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Protocol, runtime_checkable

from repro.energy.capacitance import NOMINAL_VOLTAGE, CapacitanceTable
from repro.exceptions import EnergyModelError
from repro.ir.values import DataVariable, expected_hamming, mean_trace_hamming

__all__ = [
    "EnergyModel",
    "StaticEnergyModel",
    "ActivityEnergyModel",
    "PairwiseSwitchingModel",
    "reference_reg_voltage",
]


def reference_reg_voltage(
    model: "EnergyModel | None", default: float = NOMINAL_VOLTAGE
) -> float:
    """Register-file supply a sweep should rescale from.

    The built-in models expose their register supply as ``reg_voltage``;
    custom :class:`EnergyModel` implementations may not, in which case the
    nominal supply is assumed.  Every voltage sweep (design-space
    exploration, the DAG DVFS co-optimiser) resolves the fallback through
    this one helper so their defaults cannot drift apart.
    """
    if model is None:
        return default
    return float(getattr(model, "reg_voltage", default))


@runtime_checkable
class EnergyModel(Protocol):
    """Per-access energies the allocator charges.

    ``reg_write`` receives the value previously held by the register
    (``None`` for a register of unknown initial contents, i.e. a path
    starting at the source node); static models ignore it.
    """

    def mem_read(self, v: DataVariable) -> float: ...

    def mem_write(self, v: DataVariable) -> float: ...

    def reg_read(self, v: DataVariable) -> float: ...

    def reg_write(self, v: DataVariable, prev: DataVariable | None) -> float: ...

    def with_voltages(
        self, mem_voltage: float, reg_voltage: float
    ) -> "EnergyModel": ...


def _check_voltage(voltage: float) -> float:
    if voltage <= 0:
        raise EnergyModelError(f"non-positive supply voltage {voltage}")
    return voltage


@dataclass(frozen=True)
class StaticEnergyModel:
    """Eq. (1): constant per-access energies (``E = C * V^2``).

    Attributes:
        table: Switched-capacitance table.
        mem_voltage: Supply of the memory component.
        reg_voltage: Supply of the register file.
    """

    table: CapacitanceTable = field(default_factory=CapacitanceTable)
    mem_voltage: float = NOMINAL_VOLTAGE
    reg_voltage: float = NOMINAL_VOLTAGE

    def __post_init__(self) -> None:
        _check_voltage(self.mem_voltage)
        _check_voltage(self.reg_voltage)

    def mem_read(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_read, self.mem_voltage)

    def mem_write(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_write, self.mem_voltage)

    def reg_read(self, v: DataVariable) -> float:
        return self.table.energy(self.table.reg_read, self.reg_voltage)

    def reg_write(self, v: DataVariable, prev: DataVariable | None) -> float:
        return self.table.energy(self.table.reg_write, self.reg_voltage)

    def with_voltages(
        self, mem_voltage: float, reg_voltage: float
    ) -> "StaticEnergyModel":
        return replace(
            self, mem_voltage=mem_voltage, reg_voltage=reg_voltage
        )


@dataclass(frozen=True)
class ActivityEnergyModel:
    """Eq. (2): Hamming-distance register-file energy, static memory energy.

    Register writes cost ``H(prev, v) * C_rw^r * Vr^2`` where the Hamming
    distance comes from attached value traces (falling back to the 0.5
    expected activity of section 6 when traces are missing); register reads
    are free, as in eq. (2).  Memory accesses keep the static per-access
    model — simultaneously activity-modelling memory would need the
    NP-complete two-commodity flow the paper rules out (section 7).

    Attributes:
        table: Switched-capacitance table (uses ``reg_bit`` for C_rw^r).
        mem_voltage: Memory supply.
        reg_voltage: Register-file supply.
        start_activity: Fraction of bits assumed to flip when a register of
            unknown contents is first written.
    """

    table: CapacitanceTable = field(default_factory=CapacitanceTable)
    mem_voltage: float = NOMINAL_VOLTAGE
    reg_voltage: float = NOMINAL_VOLTAGE
    start_activity: float = 0.5

    def __post_init__(self) -> None:
        _check_voltage(self.mem_voltage)
        _check_voltage(self.reg_voltage)
        if not 0.0 <= self.start_activity <= 1.0:
            raise EnergyModelError(
                f"start activity {self.start_activity} outside [0, 1]"
            )

    def mem_read(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_read, self.mem_voltage)

    def mem_write(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_write, self.mem_voltage)

    def reg_read(self, v: DataVariable) -> float:
        return 0.0

    def reg_write(self, v: DataVariable, prev: DataVariable | None) -> float:
        hamming = self.hamming(prev, v)
        return self.table.energy(self.table.reg_bit, self.reg_voltage) * hamming

    def hamming(self, prev: DataVariable | None, v: DataVariable) -> float:
        """Estimated bit flips when *v* replaces *prev* in a register."""
        if prev is None:
            return expected_hamming(v.width, self.start_activity)
        if prev.name == v.name:
            return 0.0
        return mean_trace_hamming(prev, v)

    def with_voltages(
        self, mem_voltage: float, reg_voltage: float
    ) -> "ActivityEnergyModel":
        return replace(
            self, mem_voltage=mem_voltage, reg_voltage=reg_voltage
        )


@dataclass(frozen=True)
class PairwiseSwitchingModel:
    """Activity model with an explicit inter-variable switching table.

    The paper's figures 3 and 4 specify switching activities per variable
    pair directly (e.g. ``a -> b: 0.2``, as a fraction of the word width);
    this model consumes such a table verbatim.  Pairs are symmetric by
    default; a missing pair falls back to *default_activity*.

    Attributes:
        activities: ``(v1 name, v2 name) -> fraction of bits flipping``.
        table: Capacitance table (uses ``reg_bit`` x width).
        mem_voltage: Memory supply.
        reg_voltage: Register-file supply.
        start_activity: Activity charged when a path's first variable
            enters a register ("0.5 of the bits change at time 0").
        default_activity: Activity for pairs absent from the table.
    """

    activities: Mapping[tuple[str, str], float] = field(default_factory=dict)
    table: CapacitanceTable = field(default_factory=CapacitanceTable)
    mem_voltage: float = NOMINAL_VOLTAGE
    reg_voltage: float = NOMINAL_VOLTAGE
    start_activity: float = 0.5
    default_activity: float = 0.5

    def __post_init__(self) -> None:
        _check_voltage(self.mem_voltage)
        _check_voltage(self.reg_voltage)
        for pair, activity in self.activities.items():
            if not 0.0 <= activity <= 1.0:
                raise EnergyModelError(
                    f"switching activity {activity} for pair {pair} "
                    "outside [0, 1]"
                )

    def mem_read(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_read, self.mem_voltage)

    def mem_write(self, v: DataVariable) -> float:
        return self.table.energy(self.table.mem_write, self.mem_voltage)

    def reg_read(self, v: DataVariable) -> float:
        return 0.0

    def reg_write(self, v: DataVariable, prev: DataVariable | None) -> float:
        activity = self.activity(prev, v)
        bit_energy = self.table.energy(self.table.reg_bit, self.reg_voltage)
        return bit_energy * activity * v.width

    def activity(self, prev: DataVariable | None, v: DataVariable) -> float:
        """Switching fraction when *v* replaces *prev*."""
        if prev is None:
            return self.start_activity
        if prev.name == v.name:
            return 0.0
        key = (prev.name, v.name)
        if key in self.activities:
            return self.activities[key]
        reverse = (v.name, prev.name)
        if reverse in self.activities:
            return self.activities[reverse]
        return self.default_activity

    def with_voltages(
        self, mem_voltage: float, reg_voltage: float
    ) -> "PairwiseSwitchingModel":
        return replace(
            self, mem_voltage=mem_voltage, reg_voltage=reg_voltage
        )
