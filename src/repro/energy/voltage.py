"""Voltage and frequency scaling of memory components.

Section 5.2 of the paper motivates restricted memory access times with
memory modules "operating at lower frequencies (and lower supply voltages
to save energy)".  This module provides the delay/voltage relation that
pairs a frequency divisor with a feasible scaled supply, and the
:class:`MemoryConfig` bundle the table-1 benchmark sweeps over.

The delay model is the classic long-channel CMOS relation used by
Chandrakasan et al. [3]:

    delay(V) ∝ V / (V - Vt)^2

so the maximum operating frequency at supply ``V`` relative to the nominal
supply ``V0`` is ``delay(V0) / delay(V)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.capacitance import NOMINAL_VOLTAGE
from repro.exceptions import EnergyModelError
from repro.lifetimes.splitting import periodic_access_times

__all__ = [
    "cmos_delay_factor",
    "max_divisor_supply",
    "scale_energy",
    "MemoryConfig",
]

#: Default CMOS threshold voltage (V) used by the delay model.
DEFAULT_THRESHOLD = 0.8


def cmos_delay_factor(
    voltage: float,
    nominal: float = NOMINAL_VOLTAGE,
    threshold: float = DEFAULT_THRESHOLD,
) -> float:
    """Gate-delay multiplier at *voltage* relative to *nominal* supply.

    Returns a value ``>= 1`` for sub-nominal supplies: a memory at this
    voltage is this many times slower.
    """
    if voltage <= threshold:
        raise EnergyModelError(
            f"supply {voltage} V at or below threshold {threshold} V"
        )
    def delay(v: float) -> float:
        return v / (v - threshold) ** 2

    return delay(voltage) / delay(nominal)


def max_divisor_supply(
    divisor: int,
    nominal: float = NOMINAL_VOLTAGE,
    threshold: float = DEFAULT_THRESHOLD,
    precision: float = 1e-6,
) -> float:
    """Lowest supply at which the memory still meets ``f / divisor``.

    Bisects the monotone delay relation: the returned voltage ``V``
    satisfies ``cmos_delay_factor(V) <= divisor`` with equality up to
    *precision*.  A divisor of 1 returns the nominal supply.
    """
    if divisor < 1:
        raise EnergyModelError(f"frequency divisor must be >= 1, got {divisor}")
    if divisor == 1:
        return nominal
    lo, hi = threshold + precision, nominal
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if cmos_delay_factor(mid, nominal, threshold) <= divisor:
            hi = mid
        else:
            lo = mid
    return hi


def scale_energy(energy: float, old_voltage: float, new_voltage: float) -> float:
    """Rescale a ``C * V^2`` energy to a new supply voltage."""
    if old_voltage <= 0 or new_voltage <= 0:
        raise EnergyModelError("voltages must be positive")
    return energy * (new_voltage / old_voltage) ** 2


@dataclass(frozen=True)
class MemoryConfig:
    """A memory operating point: frequency divisor + supply voltage.

    Attributes:
        divisor: The memory accepts accesses every *divisor* control steps
            (``c`` in Problem 1; 1 = full speed).
        voltage: Memory supply at this operating point.
        offset: First access step of the periodic access pattern.
    """

    divisor: int = 1
    voltage: float = NOMINAL_VOLTAGE
    offset: int = 1

    def __post_init__(self) -> None:
        if self.divisor < 1:
            raise EnergyModelError(
                f"frequency divisor must be >= 1, got {self.divisor}"
            )
        if self.voltage <= 0:
            raise EnergyModelError(f"non-positive voltage {self.voltage}")
        if self.offset < 0:
            raise EnergyModelError(f"negative offset {self.offset}")

    @property
    def restricted(self) -> bool:
        """Whether access times actually constrain the allocator."""
        return self.divisor > 1

    def access_times(self, length: int) -> frozenset[int] | None:
        """Access-time set for a block of *length* steps (None if free)."""
        if not self.restricted:
            return None
        return periodic_access_times(self.divisor, length, self.offset)

    @classmethod
    def scaled(cls, divisor: int, offset: int = 1) -> "MemoryConfig":
        """Operating point with the lowest supply meeting ``f / divisor``."""
        return cls(
            divisor=divisor,
            voltage=round(max_divisor_supply(divisor), 3),
            offset=offset,
        )
