"""Energy-model substrate: capacitance tables, static/activity models,
voltage-frequency scaling, switching estimation, and reports."""

from repro.energy.capacitance import NOMINAL_VOLTAGE, CapacitanceTable
from repro.energy.models import (
    ActivityEnergyModel,
    EnergyModel,
    PairwiseSwitchingModel,
    StaticEnergyModel,
    reference_reg_voltage,
)
from repro.energy.report import EnergyReport
from repro.energy.switching import (
    attach_traces,
    correlated_trace,
    gaussian_dsp_trace,
    pairwise_activity_table,
    uniform_trace,
)
from repro.energy.voltage import (
    MemoryConfig,
    cmos_delay_factor,
    max_divisor_supply,
    scale_energy,
)

__all__ = [
    "ActivityEnergyModel",
    "CapacitanceTable",
    "EnergyModel",
    "EnergyReport",
    "MemoryConfig",
    "NOMINAL_VOLTAGE",
    "PairwiseSwitchingModel",
    "StaticEnergyModel",
    "attach_traces",
    "cmos_delay_factor",
    "correlated_trace",
    "gaussian_dsp_trace",
    "max_divisor_supply",
    "pairwise_activity_table",
    "reference_reg_voltage",
    "scale_energy",
    "uniform_trace",
]
