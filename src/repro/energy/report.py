"""Energy accounting reports.

The allocator produces an :class:`EnergyReport` per solution: access counts
and energy per storage component, independently recomputed from the
extracted allocation (not just read off the flow objective), so the test
suite can assert the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyReport"]


@dataclass
class EnergyReport:
    """Access counts and energy breakdown of one allocation.

    Attributes:
        mem_reads / mem_writes: Memory access counts (includes spill
            writes and explicit reload reads).
        reg_reads / reg_writes: Register-file access counts (a write is a
            new value entering some register).
        mem_read_energy / mem_write_energy: Memory energy totals.
        reg_read_energy / reg_write_energy: Register-file energy totals.
    """

    mem_reads: int = 0
    mem_writes: int = 0
    reg_reads: int = 0
    reg_writes: int = 0
    mem_read_energy: float = 0.0
    mem_write_energy: float = 0.0
    reg_read_energy: float = 0.0
    reg_write_energy: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def mem_accesses(self) -> int:
        """Total memory accesses (the '# Accesses Mem' column of table 1)."""
        return self.mem_reads + self.mem_writes

    @property
    def reg_accesses(self) -> int:
        """Total register-file accesses ('# Accesses Reg' of table 1)."""
        return self.reg_reads + self.reg_writes

    @property
    def mem_energy(self) -> float:
        return self.mem_read_energy + self.mem_write_energy

    @property
    def reg_energy(self) -> float:
        return self.reg_read_energy + self.reg_write_energy

    @property
    def total_energy(self) -> float:
        """``Energy_msystem`` of eq. (1)/(2)."""
        return self.mem_energy + self.reg_energy

    def add_mem_read(self, energy: float, count: int = 1) -> None:
        self.mem_reads += count
        self.mem_read_energy += energy

    def add_mem_write(self, energy: float, count: int = 1) -> None:
        self.mem_writes += count
        self.mem_write_energy += energy

    def add_reg_read(self, energy: float, count: int = 1) -> None:
        self.reg_reads += count
        self.reg_read_energy += energy

    def add_reg_write(self, energy: float, count: int = 1) -> None:
        self.reg_writes += count
        self.reg_write_energy += energy

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"memory   : {self.mem_reads:4d} reads  {self.mem_writes:4d} writes"
            f"  energy {self.mem_energy:10.3f}",
            f"registers: {self.reg_reads:4d} reads  {self.reg_writes:4d} writes"
            f"  energy {self.reg_energy:10.3f}",
            f"total    : {self.mem_accesses + self.reg_accesses:4d} accesses"
            f"              energy {self.total_energy:10.3f}",
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
