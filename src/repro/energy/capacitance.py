"""Relative capacitance / energy tables.

The paper estimates energy with capacitance data from Chandrakasan et
al. [3] for an on-chip single-port 256x16-bit memory and a single-port
16x16-bit register file, plus the access-energy ratios reported by the
ISLPD'95 panel [14]: relative to a 16-bit addition, a multiplication,
on-chip memory read, on-chip memory write, and off-chip transfer dissipate
4x, 5x, 10x and 11x respectively.

The cited tables themselves are not reprinted in the paper, so this module
encodes a self-consistent *relative* energy table anchored to those ratios.
Only relative energies matter anywhere in the reproduction (every reported
result is a ratio), and all values are configurable.

Energies scale as ``E = C * V^2``; the table stores switched capacitances
normalised so that an access at the nominal 5 V supply yields the [14]
ratios directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EnergyModelError

__all__ = ["CapacitanceTable", "NOMINAL_VOLTAGE"]

#: Nominal supply of the paper's 5 V CMOS library.
NOMINAL_VOLTAGE = 5.0

#: Relative access energies at nominal supply (anchored to [14], add = 1).
_MEM_READ_ENERGY = 5.0
_MEM_WRITE_ENERGY = 10.0
_OFFCHIP_ENERGY = 11.0
#: A 16x16 register file is roughly an order of magnitude smaller than the
#: 256x16 memory of [3]; reads and writes are taken an order cheaper than
#: the corresponding memory access.
_REG_READ_ENERGY = 0.5
_REG_WRITE_ENERGY = 1.0
#: Per-bit switched capacitance of a register-file write used by the
#: activity model: a full-width (16-bit) worst-case write equals the static
#: register write energy.
_DEFAULT_WIDTH = 16


@dataclass(frozen=True)
class CapacitanceTable:
    """Switched capacitances of the storage components.

    All values are in arbitrary units chosen so that ``C * NOMINAL_VOLTAGE**2``
    reproduces the relative energies of [14].

    Attributes:
        mem_read: Capacitance switched per on-chip memory read.
        mem_write: Capacitance switched per on-chip memory write.
        reg_read: Capacitance switched per register-file read.
        reg_write: Capacitance switched per register-file write (static
            model; the activity model uses ``reg_bit`` instead).
        reg_bit: Capacitance switched per register-file bit flip
            (``C_rw^r`` of eq. 2, per unit Hamming distance).
        offchip: Capacitance switched per off-chip transfer (future-work
            hook the paper's conclusion points at).
    """

    mem_read: float = _MEM_READ_ENERGY / NOMINAL_VOLTAGE**2
    mem_write: float = _MEM_WRITE_ENERGY / NOMINAL_VOLTAGE**2
    reg_read: float = _REG_READ_ENERGY / NOMINAL_VOLTAGE**2
    reg_write: float = _REG_WRITE_ENERGY / NOMINAL_VOLTAGE**2
    reg_bit: float = _REG_WRITE_ENERGY / NOMINAL_VOLTAGE**2 / _DEFAULT_WIDTH
    offchip: float = _OFFCHIP_ENERGY / NOMINAL_VOLTAGE**2

    def __post_init__(self) -> None:
        for name in (
            "mem_read",
            "mem_write",
            "reg_read",
            "reg_write",
            "reg_bit",
            "offchip",
        ):
            if getattr(self, name) < 0:
                raise EnergyModelError(f"capacitance {name} is negative")

    def energy(self, capacitance: float, voltage: float) -> float:
        """Switched energy ``C * V^2``."""
        if voltage <= 0:
            raise EnergyModelError(f"non-positive voltage {voltage}")
        return capacitance * voltage * voltage

    @classmethod
    def onchip_default(cls) -> "CapacitanceTable":
        """The default table anchored to [14]/[3]."""
        return cls()

    @classmethod
    def offchip_memory(cls) -> "CapacitanceTable":
        """A table where the 'memory' component is off-chip.

        Off-chip accesses dissipate roughly an order of magnitude more than
        on-chip ones ([2], [14], [19]); the paper's conclusion predicts
        "significantly larger savings" in this regime.
        """
        base = cls()
        scale = _OFFCHIP_ENERGY / _MEM_READ_ENERGY * 5.0
        return cls(
            mem_read=base.mem_read * scale,
            mem_write=base.mem_write * scale,
            reg_read=base.reg_read,
            reg_write=base.reg_write,
            reg_bit=base.reg_bit,
            offchip=base.offchip,
        )
