"""Advanced features: diagnostics, port constraints, charts, regeneration.

Walks the section-7 extensions on one small design:

1. diagnose an infeasible memory operating point and find the smallest
   register file that fixes it;
2. constrain the memory port count (pinning arc flows to 1, section 7);
3. visualise the allocation as an ASCII lifetime chart;
4. shrink storage pressure with the data-regeneration transformation
   plus lazy scheduling;
5. roll energies up over a task flow graph.

Run::

    python examples/advanced_features.py
"""

import random

from repro import (
    AllocationProblem,
    MemoryConfig,
    StaticEnergyModel,
    allocate,
    fir_filter,
    list_schedule,
)
from repro.analysis import allocation_chart, required_ports
from repro.core import (
    allocate_task_graph,
    allocate_with_port_limit,
    diagnose,
)
from repro.energy import CapacitanceTable
from repro.ir import BlockBuilder, Task, TaskGraph
from repro.lifetimes import extract_lifetimes, max_density
from repro.transforms import regenerate
from repro.workloads import dct4

# ----------------------------------------------------------------------
# 1. Diagnose an aggressive memory operating point.
# ----------------------------------------------------------------------
block = fir_filter(6, random.Random(3))
schedule = list_schedule(block)
aggressive = AllocationProblem.from_schedule(
    schedule,
    register_count=2,
    memory=MemoryConfig(divisor=4, voltage=2.2),
)
report = diagnose(aggressive)
print("1) feasibility at R=2, memory at f/4:")
print("  ", report.summary())
workable = aggressive.with_options(
    register_count=report.minimum_registers
)
print(f"   re-solving at R={report.minimum_registers} ->", end=" ")
print(f"energy {allocate(workable).objective:.1f}")
print()

# ----------------------------------------------------------------------
# 2. Port-constrained allocation (expensive register file so memory is
#    attractive and ports actually contend).
# ----------------------------------------------------------------------
pricey_regs = StaticEnergyModel(
    table=CapacitanceTable(reg_read=0.4, reg_write=0.8)
)
problem = AllocationProblem.from_schedule(
    schedule, register_count=8, energy_model=pricey_regs
)
free = allocate(problem)
free_ports = required_ports(free)
print(f"2) unconstrained solution needs {free_ports.mem_rw_ports} shared "
      "memory ports")
limited = allocate_with_port_limit(problem, max_mem_ports=4)
print(
    f"   limited to 4 ports: {len(limited.pinned)} segments pinned to "
    f"registers, energy overhead {limited.energy_overhead:.1f}"
)
print()

# ----------------------------------------------------------------------
# 3. ASCII chart of a small allocation.
# ----------------------------------------------------------------------
small = dct4()
small_schedule = list_schedule(small)
small_problem = AllocationProblem.from_schedule(small_schedule, 3)
print("3) dct4 allocation chart:")
print(allocation_chart(allocate(small_problem)))
print()

# ----------------------------------------------------------------------
# 4. Data regeneration + lazy scheduling.
# ----------------------------------------------------------------------
b = BlockBuilder("coef")
x = b.input("x")
c = b.const("c")
v = b.add(x, c, name="v")
t = b.neg(v, name="a")
for i in range(4):
    t = b.shift(t, name=f"p{i}")
xl = b.add(t, x, name="xl")
cl = b.add(xl, c, name="cl")
z = b.add(cl, v, name="z")
b.output(z)
b.live_out(z)
original = b.build()
transformed = regenerate(original, StaticEnergyModel())
for label, blk in (("original", original), ("regenerated", transformed)):
    sched = list_schedule(blk, lazy=True)
    lifetimes = extract_lifetimes(sched)
    density = max_density(lifetimes.values(), sched.length)
    energy = allocate(
        AllocationProblem.from_schedule(sched, 2)
    ).objective
    print(f"4) {label:12s}: density {density}, energy at R=2: {energy:.1f}")
print()

# ----------------------------------------------------------------------
# 5. Task-graph roll-up.
# ----------------------------------------------------------------------
graph = TaskGraph("pipeline")
graph.add_task(Task("filter", fir_filter(4), rate=8))
graph.add_task(Task("transform", dct4(), rate=2))
graph.add_edge("filter", "transform")
result = allocate_task_graph(graph, register_count=4)
print("5)", result.summary().replace("\n", "\n   "))
