"""Radar signal processing under memory voltage/frequency scaling.

Reproduces the paper's table-1 design exploration on the synthetic radar
pulse-compression kernel: the memory module runs at f, f/2 or f/4 with its
supply scaled down accordingly (5 V -> ~2.2 V), and the allocator places
values so that everything a slowed memory cannot serve lives in the
register file (split lifetimes with forced arcs, section 5.2).

Run::

    python examples/radar_low_power.py
"""

import random

from repro import (
    ActivityEnergyModel,
    AllocationProblem,
    MemoryConfig,
    allocate,
    reallocate_memory,
    rsp_schedule,
)
from repro.analysis import format_table
from repro.energy.voltage import max_divisor_supply

REGISTERS = 16

schedule = rsp_schedule(rng=random.Random(2024))
print(
    f"RSP kernel: {len(schedule.block)} operations over "
    f"{schedule.length} control steps"
)

rows = []
results = []
for divisor in (1, 2, 4):
    voltage = round(max_divisor_supply(divisor), 2)
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=REGISTERS,
        energy_model=ActivityEnergyModel().with_voltages(voltage, 5.0),
        memory=MemoryConfig(divisor=divisor, voltage=voltage),
    )
    allocation = allocate(problem)
    results.append((divisor, voltage, allocation))

base_energy = results[-1][2].objective
for divisor, voltage, allocation in results:
    rows.append(
        (
            f"f/{divisor}",
            voltage,
            allocation.report.mem_accesses,
            allocation.report.reg_accesses,
            allocation.objective / base_energy,
        )
    )

print()
print(
    format_table(
        ("memory freq", "supply V", "mem acc", "reg acc", "relative aE"),
        rows,
        title="Table 1 reproduction (activity model; paper: 2.8/1.6/1)",
    )
)

# Second flow pass: lay out the memory-resident values to minimise
# data-line switching.
divisor, voltage, slowest = results[-1]
layout = reallocate_memory(slowest)
print()
print(
    f"f/{divisor} memory layout: {layout.address_count} addresses, "
    f"switching energy {layout.switching_energy:.2f}"
)
for name, address in sorted(layout.addresses.items(), key=lambda kv: kv[1]):
    print(f"  @{address}: {name}")
