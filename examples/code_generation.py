"""From dataflow to verified machine code.

Runs the paper's full methodology on a DCT kernel: schedule, allocate,
lay out memory, *lower to instructions* (explicit loads/stores and memory
operands — the paper's "detailed instruction mapping"), optimise the
address-register offsets (SOA), and finally *simulate* the generated code
against a direct dataflow evaluation to prove the whole chain preserves
the computation.

Run::

    python examples/code_generation.py
"""

import random

from repro import allocate_block, dct4
from repro.codegen import evaluate_block, lower, verify_program
from repro.ir import OpCode
from repro.moa import access_sequence, sequence_cost, soa_liao, soa_naive

block = dct4()
result = allocate_block(block, register_count=3)
program = lower(result)

print(program.format())
print()
print(
    f"code size {program.code_size} instructions, "
    f"{program.loads} loads, {program.stores} stores, "
    f"{program.memory_reads} memory reads, "
    f"{program.memory_writes} memory writes"
)

# Offset assignment over the block's memory traffic.
sequence = access_sequence(result.allocation)
if sequence:
    naive = sequence_cost(sequence, soa_naive(sequence))
    liao = sequence_cost(sequence, soa_liao(sequence))
    print(
        f"address-register cost over {len(sequence)} accesses: "
        f"naive {naive:.2f} -> SOA {liao:.2f}"
    )

# Simulate against the reference dataflow evaluation.
rng = random.Random(7)
inputs = {
    op.output: rng.getrandbits(block.variable(op.output).width)
    for op in block
    if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST)
}
state = verify_program(program, block, result.allocation, inputs)
reference = evaluate_block(block, inputs)
print()
print("simulated outputs (all verified against the reference):")
for name, value in sorted(state.outputs.items()):
    print(f"  {name} = {value}  (reference {reference[name]})")
