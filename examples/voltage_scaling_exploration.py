"""Explore the memory voltage/frequency trade-off space.

For a fixed kernel, sweeps the memory frequency divisor (and the lowest
supply that still meets it, via the CMOS delay model) against the register
file size, mapping out where slowing the memory pays off — the design
exploration loop the paper's methodology (section 5) is built for.

Run::

    python examples/voltage_scaling_exploration.py
"""

import random

from repro import (
    ActivityEnergyModel,
    AllocationProblem,
    MemoryConfig,
    allocate,
    extract_lifetimes,
    iir_biquad,
    list_schedule,
)
from repro.analysis import format_table
from repro.energy.voltage import cmos_delay_factor, max_divisor_supply
from repro.exceptions import InfeasibleFlowError

rng = random.Random(99)
block = iir_biquad(2, rng)
schedule = list_schedule(block)
lifetimes = extract_lifetimes(schedule)
print(
    f"{block.name}: {len(lifetimes)} variables over {schedule.length} steps"
)
print()

print("CMOS delay model (threshold 0.8 V):")
for voltage in (5.0, 4.0, 3.3, 2.5, 2.0):
    print(
        f"  {voltage:.1f} V -> {cmos_delay_factor(voltage):.2f}x slower"
    )
print()

rows = []
for registers in (6, 10, 14):
    for divisor in (1, 2, 3, 4):
        voltage = round(max_divisor_supply(divisor), 2)
        problem = AllocationProblem(
            lifetimes,
            registers,
            schedule.length,
            energy_model=ActivityEnergyModel().with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        try:
            allocation = allocate(problem)
        except InfeasibleFlowError:
            rows.append((registers, f"f/{divisor}", voltage, "-", "-", "-"))
            continue
        rows.append(
            (
                registers,
                f"f/{divisor}",
                voltage,
                allocation.report.mem_accesses,
                allocation.report.reg_accesses,
                allocation.objective,
            )
        )

print(
    format_table(
        ("R", "memory", "supply V", "mem acc", "reg acc", "energy"),
        rows,
        title="Energy across the (registers x memory operating point) grid"
        " ('-' = infeasible: forced register demand exceeds R)",
    )
)
