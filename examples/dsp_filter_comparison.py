"""Compare the flow allocator against prior art on DSP kernels.

Runs the simultaneous flow allocator and every baseline (two-phase
binding-then-partition, left-edge, graph colouring, greedy) on the
elliptic wave filter and an FIR filter under the activity-based energy
model, reproducing the paper's headline comparison.

Run::

    python examples/dsp_filter_comparison.py
"""

import random

from repro import (
    ActivityEnergyModel,
    elliptic_wave_filter,
    extract_lifetimes,
    fir_filter,
    list_schedule,
)
from repro.analysis import compare_allocators, improvement_factor

rng = random.Random(42)
model = ActivityEnergyModel()

for block in (fir_filter(10, rng), elliptic_wave_filter(rng)):
    schedule = list_schedule(block)
    lifetimes = extract_lifetimes(schedule)
    for registers in (4, 8):
        comparison = compare_allocators(
            lifetimes, schedule.length, registers, model
        )
        print(
            comparison.format(
                title=f"{block.name} — {len(lifetimes)} variables, "
                f"R={registers}"
            )
        )
        print(
            "  improvement over two-phase prior art: "
            f"{comparison.improvement_over('two-phase'):.2f}x "
            "(paper reports 1.4-2.5x)"
        )
        best = comparison.best_baseline()
        print(
            f"  improvement over best baseline ({best.name}): "
            f"{improvement_factor(best, comparison.flow):.2f}x"
        )
        print()
