"""Quickstart: allocate an FIR filter's variables in three lines.

Run::

    python examples/quickstart.py
"""

from repro import allocate_block, fir_filter

block = fir_filter(taps=8)
result = allocate_block(block, register_count=4)

print(result.summary())
print()
print(
    f"Total storage energy: {result.total_energy:.1f} "
    "(relative units, 16-bit add = 1)"
)
