"""Build a custom kernel with the BlockBuilder API and allocate it.

Shows the full manual workflow: author a dataflow kernel, schedule it on
an explicit datapath, attach value traces for the activity model, inspect
the lifetimes, and solve Problem 1 — including the paper's figure-3-style
worked example built from raw lifetimes.

Run::

    python examples/custom_kernel.py
"""

import random

from repro import (
    ActivityEnergyModel,
    AllocationProblem,
    BlockBuilder,
    PairwiseSwitchingModel,
    ResourceSet,
    allocate,
    extract_lifetimes,
    list_schedule,
)
from repro.energy.switching import gaussian_dsp_trace
from repro.workloads import FIGURE3_ACTIVITIES, FIGURE3_HORIZON, figure3_lifetimes

# ----------------------------------------------------------------------
# 1. Author a kernel: complex magnitude |a + jb|^2 * gain.
# ----------------------------------------------------------------------
rng = random.Random(7)


def trace():
    return gaussian_dsp_trace(rng, 16, 32)


b = BlockBuilder("cmag")
re = b.input("re", trace=trace())
im = b.input("im", trace=trace())
gain = b.const("gain", trace=trace())
re2 = b.mul(re, b.move(re, name="re_c"), name="re2")
im2 = b.mul(im, b.move(im, name="im_c"), name="im2")
mag = b.add(re2, im2, name="mag")
out = b.mul(mag, gain, name="out")
b.output(out)
b.live_out(out)
block = b.build()

# ----------------------------------------------------------------------
# 2. Schedule on one multiplier + one ALU, extract lifetimes.
# ----------------------------------------------------------------------
schedule = list_schedule(block, ResourceSet({"mult": 1, "alu": 1}))
lifetimes = extract_lifetimes(schedule)
print(f"{block.name}: scheduled over {schedule.length} steps")
for name, lt in lifetimes.items():
    print(f"  {name:6s} [{lt.write_time}, {lt.end}] reads at {lt.read_times}")

# ----------------------------------------------------------------------
# 3. Allocate with 2 registers under the activity model.
# ----------------------------------------------------------------------
problem = AllocationProblem.from_schedule(
    schedule, register_count=2, energy_model=ActivityEnergyModel()
)
allocation = allocate(problem)
print()
print(allocation.format())

# ----------------------------------------------------------------------
# 4. The paper's figure-3 instance, from raw lifetimes.
# ----------------------------------------------------------------------
model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
fig3 = allocate(
    AllocationProblem(
        figure3_lifetimes(), 1, FIGURE3_HORIZON, energy_model=model
    )
)
print()
print("figure 3 simultaneous solution (one register):")
print(fig3.format())
