"""Tests for the lint engine: clean runs, selection, overrides, gating."""

from __future__ import annotations

import pytest

from repro.core import AllocationProblem, allocate
from repro.core.pipeline import allocate_block, allocate_schedule
from repro.energy import MemoryConfig, PairwiseSwitchingModel
from repro.exceptions import LintGateError
from repro.lint import LintConfig, Severity, all_rules, get_rule, run_lint
from repro.obs import trace as obs
from repro.scheduling import list_schedule
from repro.workloads import (
    FIGURE1_HORIZON,
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure1_lifetimes,
    figure3_lifetimes,
    figure4_lifetimes,
    fir_filter,
)
from tests.conftest import make_lifetime


def paper_problems():
    for lifetimes, horizon, activities in (
        (figure1_lifetimes(), FIGURE1_HORIZON, None),
        (figure3_lifetimes(), FIGURE3_HORIZON, FIGURE3_ACTIVITIES),
        (figure4_lifetimes(), FIGURE4_HORIZON, FIGURE4_ACTIVITIES),
    ):
        kwargs = {}
        if activities is not None:
            kwargs["energy_model"] = PairwiseSwitchingModel(activities)
        yield AllocationProblem(lifetimes, 2, horizon, **kwargs)


def overloaded_problem():
    lifetimes = {
        "u": make_lifetime("u", 2, 4),
        "v": make_lifetime("v", 2, 4),
    }
    return AllocationProblem(
        lifetimes, 1, 6, memory=MemoryConfig(divisor=6, voltage=2.0)
    )


def test_paper_examples_lint_clean():
    for problem in paper_problems():
        report = run_lint(problem)
        assert report.errors == (), report.summary()


def test_scheduled_kernel_lints_clean(rng):
    block = fir_filter(4, rng)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(schedule, register_count=4)
    report = run_lint(problem, schedule=schedule)
    assert len(report) == 0


def test_rule_registry_is_complete_and_stable():
    rules = all_rules()
    codes = [entry.code for entry in rules]
    assert codes == sorted(codes)
    assert len(set(codes)) == len(codes)
    families = {entry.family for entry in rules}
    assert {"RA1", "RA2", "RA3", "RA4", "RA5", "RA9"} <= families
    assert get_rule("RA900").check is None


def test_select_restricts_rule_families():
    problem = overloaded_problem()
    report = run_lint(problem, config=LintConfig(select=("RA4",)))
    assert all(d.family == "RA4" for d in report)


def test_ignore_drops_selected_codes():
    problem = overloaded_problem()
    full = run_lint(problem)
    assert "RA301" in full.codes
    filtered = run_lint(problem, config=LintConfig(ignore=("RA301",)))
    assert "RA301" not in filtered.codes


def test_severity_override_applies():
    problem = overloaded_problem()
    report = run_lint(
        problem,
        config=LintConfig(
            select=("RA301",),
            severity_overrides={"RA301": Severity.NOTE},
        ),
    )
    assert [d.severity for d in report] == [Severity.NOTE]


def test_run_emits_obs_counters():
    with obs.collect() as trace:
        run_lint(overloaded_problem())
    assert trace.counter("lint.rules_run") >= 20
    assert trace.counter("lint.diagnostics") >= 1
    assert trace.counter("lint.errors") >= 1
    assert trace.find("lint.run") is not None


# ----------------------------------------------------------------------
# the opt-in gate
# ----------------------------------------------------------------------
def test_gate_passes_clean_instance():
    problem = next(iter(paper_problems()))
    report = allocate(problem, lint="error")
    assert report.objective == allocate(problem).objective


def test_gate_raises_with_report_attached():
    with pytest.raises(LintGateError) as excinfo:
        allocate(overloaded_problem(), lint="error")
    exc = excinfo.value
    assert "RA301" in str(exc)
    assert exc.report is not None
    assert "RA301" in exc.report.codes


def test_gate_threshold_is_respected():
    # The overload is an ERROR; gating only on nothing ("note" finds the
    # error too, so use a config that silences the family instead).
    # RA601 proves the same overload RA301 reports, so both must be
    # ignored for the gate to pass.
    problem = overloaded_problem()
    from repro.lint import gate_problem

    report = gate_problem(
        problem, fail_on="error", config=LintConfig(ignore=("RA301", "RA601"))
    )
    assert "RA301" not in report.codes


def test_pipeline_gate_sees_schedule(rng):
    block = fir_filter(4, rng)
    result = allocate_block(block, register_count=4, lint="warning")
    assert result.allocation.objective == result.total_energy
    schedule = list_schedule(block)
    result = allocate_schedule(schedule, register_count=4, lint="error")
    assert result.problem.register_count == 4


def test_allocate_without_lint_never_gates():
    # The default path must not even import the lint machinery's gate.
    allocation = allocate(next(iter(paper_problems())))
    assert allocation.objective is not None
