"""The README rules table is generated, not hand-maintained.

``README.md`` embeds the output of :func:`repro.lint.rules_markdown`
between ``<!-- rules:begin -->`` / ``<!-- rules:end -->`` markers; this
test fails whenever a rule is added, renamed, or re-severitied without
regenerating the block, keeping the docs honest.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import rules_markdown

README = Path(__file__).resolve().parents[2] / "README.md"
BLOCK = re.compile(
    r"<!-- rules:begin -->\n(.*?)\n<!-- rules:end -->", re.DOTALL
)


def test_readme_rules_table_matches_registry():
    match = BLOCK.search(README.read_text())
    assert match, "README.md lost its <!-- rules:begin/end --> markers"
    embedded = match.group(1).strip()
    generated = rules_markdown().strip()
    assert embedded == generated, (
        "README rules table is stale; regenerate the block between the "
        "rules markers with repro.lint.rules_markdown()"
    )


def test_readme_table_covers_every_family():
    match = BLOCK.search(README.read_text())
    table = match.group(1)
    for family in ("RA1", "RA2", "RA3", "RA4", "RA5", "RA6"):
        assert re.search(rf"\| {family}\d\d \|", table), family
