"""Shape tests for the SARIF 2.1.0 exporter."""

from __future__ import annotations

import json

from repro.lint import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    all_rules,
    sarif_to_json,
    to_sarif,
)
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION


def sample_report():
    return LintReport(
        (
            Diagnostic(
                code="RA301",
                rule="forced-density-exceeds-registers",
                severity=Severity.ERROR,
                message="too dense",
                location=Location(step=4, detail="variables u, v"),
                hint="raise R",
            ),
            Diagnostic(
                code="RA201",
                rule="lifetime-zero-length",
                severity=Severity.ERROR,
                message="empty interval",
                location=Location(variable="u", segment=0, step=2),
            ),
            Diagnostic(
                code="RA101",
                rule="schedule-use-before-def",
                severity=Severity.WARNING,
                message="early read",
                location=Location(op="n", step=2),
            ),
        )
    )


def test_sarif_top_level_shape():
    doc = to_sarif(sample_report())
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA
    assert len(doc["runs"]) == 1


def test_sarif_driver_lists_every_registered_rule():
    doc = to_sarif(LintReport(()))
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["version"]
    ids = [entry["id"] for entry in driver["rules"]]
    assert ids == [entry.code for entry in all_rules()]
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in (
            "note",
            "warning",
            "error",
        )


def test_sarif_results_reference_rules_by_index():
    doc = to_sarif(sample_report())
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == 3
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        assert result["message"]["text"]
        assert result["level"] in ("note", "warning", "error")


def test_sarif_logical_locations():
    doc = to_sarif(sample_report())
    by_rule = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    var = by_rule["RA201"]["locations"][0]["logicalLocations"][0]
    assert var == {
        "name": "u#0",
        "fullyQualifiedName": "variable u#0, step 2",
        "kind": "variable",
    }
    op = by_rule["RA101"]["locations"][0]["logicalLocations"][0]
    assert op["name"] == "n" and op["kind"] == "function"
    inst = by_rule["RA301"]["locations"][0]["logicalLocations"][0]
    assert inst["name"] == "problem" and inst["kind"] == "module"


def test_sarif_properties_carry_hint():
    doc = to_sarif(sample_report())
    by_rule = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    assert by_rule["RA301"]["properties"]["hint"] == "raise R"


def test_sarif_json_round_trips():
    text = sarif_to_json(sample_report())
    doc = json.loads(text)
    assert doc["version"] == "2.1.0"
    assert text.endswith("\n")


# ----------------------------------------------------------------------
# merged multi-run logs
# ----------------------------------------------------------------------
def test_merge_sarif_one_run_per_entry():
    from repro.lint.sarif import merge_sarif

    first = sample_report()
    second = LintReport(())
    merged = merge_sarif(
        [
            (first, {"job": "a", "blocking": True}),
            (second, {"job": "b", "blocking": False}),
        ]
    )
    assert merged["version"] == SARIF_VERSION
    assert merged["$schema"] == SARIF_SCHEMA
    assert len(merged["runs"]) == 2
    assert merged["runs"][0]["properties"] == {"job": "a", "blocking": True}
    assert merged["runs"][1]["properties"] == {"job": "b", "blocking": False}
    assert len(merged["runs"][0]["results"]) == len(first.diagnostics)
    assert merged["runs"][1]["results"] == []


def test_merge_sarif_without_properties_omits_the_bag():
    from repro.lint.sarif import merge_sarif

    merged = merge_sarif([(sample_report(), None)])
    assert "properties" not in merged["runs"][0]


def test_merged_sarif_to_json_round_trips():
    from repro.lint.sarif import merged_sarif_to_json

    text = merged_sarif_to_json([(sample_report(), {"job": "x"})])
    doc = json.loads(text)
    assert len(doc["runs"]) == 1
    assert doc["runs"][0]["properties"]["job"] == "x"


def test_evidence_lands_in_result_properties():
    report = LintReport(
        (
            Diagnostic(
                code="RA601",
                rule="pressure-exceeds-registers-proof",
                severity=Severity.ERROR,
                message="proved",
                evidence={"certificate": "forced-pressure", "checked": True},
            ),
        )
    )
    doc = to_sarif(report)
    result = doc["runs"][0]["results"][0]
    assert result["properties"]["evidence"]["checked"] is True
