"""Tests for the ``repro-alloc lint`` subcommand and infeasibility exits."""

from __future__ import annotations

import json

from repro.cli import main


def test_lint_paper_examples_are_clean(capsys):
    for workload in ("fig1", "fig3", "fig4"):
        assert main(["lint", workload]) == 0
        out = capsys.readouterr().out
        assert "clean" in out


def test_lint_defaults_to_fig3(capsys):
    assert main(["lint"]) == 0
    assert "fig3" in capsys.readouterr().out


def test_lint_kernel_with_schedule(capsys):
    assert main(["lint", "fir", "--taps", "4"]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finds_forced_overload(capsys):
    code = main(["lint", "fir", "--taps", "4", "--divisor", "4", "-R", "1"])
    assert code == 1
    out = capsys.readouterr().out
    assert "RA301" in out
    assert "hint:" in out


def test_lint_fail_on_never_reports_but_passes(capsys):
    code = main(
        [
            "lint",
            "fir",
            "--taps",
            "4",
            "--divisor",
            "4",
            "-R",
            "1",
            "--fail-on",
            "never",
        ]
    )
    assert code == 0
    assert "RA301" in capsys.readouterr().out


def test_lint_ignore_silences_a_rule(capsys):
    # RA601 proves the same overload RA301 reports, so both families
    # are ignored to show --ignore actually silences them.
    code = main(
        [
            "lint",
            "fir",
            "--taps",
            "4",
            "--divisor",
            "4",
            "-R",
            "1",
            "--ignore",
            "RA301,RA601",
        ]
    )
    assert code == 0


def test_lint_select_family(capsys):
    code = main(
        [
            "lint",
            "fir",
            "--taps",
            "4",
            "--divisor",
            "4",
            "-R",
            "1",
            "--select",
            "RA4",
        ]
    )
    assert code == 0
    assert "RA301" not in capsys.readouterr().out


def test_lint_json_format(capsys):
    assert main(["lint", "fig4", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.lint/report/v1"
    assert payload["counts"]["error"] == 0


def test_lint_writes_sarif(tmp_path, capsys):
    target = tmp_path / "report.sarif"
    assert main(["lint", "fig3", "--sarif", str(target)]) == 0
    doc = json.loads(target.read_text())
    assert doc["version"] == "2.1.0"
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert doc["runs"][0]["results"] == []


def test_lint_sarif_records_findings(tmp_path):
    target = tmp_path / "dirty.sarif"
    code = main(
        [
            "lint",
            "fir",
            "--taps",
            "4",
            "--divisor",
            "4",
            "-R",
            "1",
            "--sarif",
            str(target),
        ]
    )
    assert code == 1
    doc = json.loads(target.read_text())
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "RA301" for r in results)


def test_lint_sarif_unwritable_path_fails(capsys):
    code = main(["lint", "fig3", "--sarif", "/nonexistent/dir/x.sarif"])
    assert code == 1
    assert "cannot write" in capsys.readouterr().err


def test_infeasible_solve_exits_2_with_diagnosis(capsys):
    # R=1 under the table-1 restricted operating points is infeasible;
    # the CLI must explain the overload instead of dumping a traceback.
    code = main(["table1", "-R", "1"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "infeasible at R=1" in err
    assert "needs R>=" in err


# ----------------------------------------------------------------------
# introspection flags and fail-closed severities
# ----------------------------------------------------------------------
def test_lint_list_rules_documents_every_family(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RA101", "RA301", "RA601", "RA602", "RA603", "RA604"):
        assert code in out
    assert "tolerance" in out  # per-rule options are listed


def test_lint_explain_renders_one_rule(capsys):
    assert main(["lint", "--explain", "RA601"]) == 0
    out = capsys.readouterr().out
    assert "RA601" in out
    assert "pressure-exceeds-registers-proof" in out
    assert "severity: error" in out
    assert "hint:" in out


def test_lint_explain_unknown_rule_is_a_clean_error(capsys):
    assert main(["lint", "--explain", "RA999"]) == 2
    assert "error:" in capsys.readouterr().err


def test_lint_fail_on_unknown_severity_fails_closed(capsys):
    # Regression: a typo'd --fail-on must behave as "error" (fail
    # closed), not silently pass; a warning names the coercion.
    code = main(
        ["lint", "fir", "--taps", "4", "--divisor", "4", "-R", "1",
         "--fail-on", "eror"]
    )
    assert code == 1
    captured = capsys.readouterr()
    assert "unknown --fail-on severity" in captured.err
    assert "failing closed" in captured.err


def test_lint_fail_on_unknown_passes_clean_instances(capsys):
    assert main(["lint", "fig3", "--fail-on", "bogus"]) == 0
    assert "failing closed" in capsys.readouterr().err


def test_lint_option_overrides_rule_tolerance(capsys):
    # A huge RA403 delay slack silences the restricted-voltage check
    # that --divisor 4 -R 1 would otherwise trip alongside RA301.
    code = main(
        ["lint", "fir", "--taps", "4", "--divisor", "4", "-R", "1",
         "--select", "RA403", "--option", "RA403.delay_slack=10.0"]
    )
    assert code == 0


def test_lint_option_bad_syntax_is_a_clean_error(capsys):
    assert main(["lint", "fig3", "--option", "RA604tolerance"]) == 2
    assert "bad --option" in capsys.readouterr().err


def test_lint_proof_rules_fire_from_the_cli(capsys):
    code = main(
        ["lint", "fir", "--taps", "4", "--divisor", "4", "-R", "0",
         "--select", "RA601"]
    )
    out = capsys.readouterr().out
    if "RA601" in out:
        assert code == 1
