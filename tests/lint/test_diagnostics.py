"""Tests for the lint diagnostic data model."""

import pytest

from repro.exceptions import ReproError
from repro.lint import Diagnostic, LintReport, Location, NO_LOCATION, Severity


def diag(code, severity, message="something is off", **loc):
    return Diagnostic(
        code=code,
        rule="some-rule",
        severity=severity,
        message=message,
        location=Location(**loc) if loc else NO_LOCATION,
    )


def test_severity_is_ordered():
    assert Severity.NOTE < Severity.WARNING < Severity.ERROR


def test_severity_labels_match_sarif_levels():
    assert [s.label for s in Severity] == ["note", "warning", "error"]


def test_severity_from_name_round_trips():
    for severity in Severity:
        assert Severity.from_name(severity.label) is severity
    assert Severity.from_name("ERROR") is Severity.ERROR


def test_severity_from_name_rejects_unknown():
    with pytest.raises(ReproError, match="unknown severity"):
        Severity.from_name("fatal")


def test_location_describe_variants():
    assert NO_LOCATION.describe() == ""
    assert Location(variable="a").describe() == "variable a"
    assert Location(variable="a", segment=1).describe() == "variable a#1"
    loc = Location(op="m", step=3, detail="extra")
    assert loc.describe() == "op m, step 3, extra"


def test_location_to_dict_drops_none_fields():
    assert NO_LOCATION.to_dict() == {}
    assert Location(variable="a", step=2).to_dict() == {
        "variable": "a",
        "step": 2,
    }


def test_diagnostic_family_and_format():
    d = diag("RA301", Severity.ERROR, variable="u", step=4)
    assert d.family == "RA3"
    text = d.format()
    assert text.startswith("RA301 error some-rule: something is off")
    assert "variable u" in text and "step 4" in text


def test_diagnostic_format_includes_hint():
    d = Diagnostic(
        code="RA101",
        rule="r",
        severity=Severity.NOTE,
        message="m",
        hint="do the thing",
    )
    assert "hint: do the thing" in d.format()


def test_report_sorts_deterministically():
    report = LintReport(
        (
            diag("RA501", Severity.ERROR),
            diag("RA101", Severity.ERROR, step=9),
            diag("RA101", Severity.ERROR, step=2),
        )
    )
    assert [d.code for d in report] == ["RA101", "RA101", "RA501"]
    assert report.diagnostics[0].location.step == 2


def test_report_filters_and_counts():
    report = LintReport(
        (
            diag("RA101", Severity.ERROR),
            diag("RA304", Severity.NOTE),
            diag("RA403", Severity.WARNING),
        )
    )
    assert len(report) == 3
    assert report.worst() is Severity.ERROR
    assert report.count(Severity.NOTE) == 1
    assert {d.code for d in report.at_least(Severity.WARNING)} == {
        "RA101",
        "RA403",
    }
    assert [d.code for d in report.errors] == ["RA101"]
    assert report.codes == ("RA101", "RA304", "RA403")


def test_report_summary():
    assert "clean" in LintReport(()).summary()
    assert LintReport(()).worst() is None
    report = LintReport(
        (diag("RA101", Severity.ERROR), diag("RA102", Severity.ERROR))
    )
    summary = report.summary()
    assert "2 errors" in summary and "RA101" in summary


def test_report_to_dict_is_versioned():
    report = LintReport((diag("RA101", Severity.ERROR, variable="a"),))
    payload = report.to_dict()
    assert payload["schema"] == "repro.lint/report/v1"
    assert payload["counts"] == {"note": 0, "warning": 0, "error": 1}
    assert payload["codes"] == ["RA101"]
    assert payload["diagnostics"][0]["location"] == {"variable": "a"}
