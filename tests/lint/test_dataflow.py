"""The worklist dataflow engine re-derives what the extractor declares.

The acceptance bar of the RA6xx analysis layer: on real scheduled
kernels, worklist liveness must reproduce ``extract_lifetimes`` exactly
(write time and read set per variable) and its pressure profile must
equal ``density_profile``; reaching definitions must find no undefined
reads on well-formed schedules and exactly the planted ones on broken
schedules.  Interval arithmetic is checked for the poisoning behaviour
RA604 leans on (NaN/inf hulls are never silently finite).
"""

from __future__ import annotations

import math

import pytest

from repro.lifetimes import density_profile, extract_lifetimes
from repro.lint.dataflow import (
    Interval,
    fixed_point,
    liveness,
    reaching_definitions,
)
from repro.scheduling.list_scheduler import list_schedule
from repro.workloads.registry import kernel_block

KERNELS = [("fir", 8), ("iir", 4), ("ewf", 0), ("dct", 0)]


def _schedule(name, taps):
    block = (
        kernel_block(name, taps=taps, seed=13)
        if taps
        else kernel_block(name, seed=13)
    )
    return list_schedule(block)


@pytest.mark.parametrize("name,taps", KERNELS)
def test_liveness_reproduces_extractor(name, taps):
    schedule = _schedule(name, taps)
    derived = liveness(schedule).lifetimes()
    declared = {
        var: (lt.write_time, tuple(lt.read_times))
        for var, lt in extract_lifetimes(schedule).items()
    }
    assert derived == declared


@pytest.mark.parametrize("name,taps", KERNELS)
def test_pressure_equals_density_profile(name, taps):
    schedule = _schedule(name, taps)
    lifetimes = extract_lifetimes(schedule)
    expected = density_profile(lifetimes.values(), schedule.length)
    assert liveness(schedule).pressure() == expected


@pytest.mark.parametrize("name,taps", KERNELS)
def test_no_undefined_reads_on_wellformed_schedules(name, taps):
    schedule = _schedule(name, taps)
    result = liveness(schedule)
    reaching = reaching_definitions(schedule)
    assert reaching.undefined_reads(result.reads_at) == []


def test_reaching_definitions_flags_use_before_def():
    schedule = _schedule("fir", 4)
    # Move one consumer to step 1, before any producer has written
    # (mutating .start post-construction bypasses validation).
    victim = next(
        op for op in schedule.block if op.inputs and not _is_input(op, schedule)
    )
    schedule.start[victim.name] = 1
    result = liveness(schedule)
    reaching = reaching_definitions(schedule)
    undefined = reaching.undefined_reads(result.reads_at)
    assert undefined, "planted use-before-def must be reported"
    read_vars = {name for name, _ in undefined}
    assert read_vars & set(victim.inputs)


def _is_input(op, schedule):
    producers = {o.output for o in schedule.block}
    return not any(name in producers for name in op.inputs)


def test_fixed_point_reaches_transitive_closure():
    # Cycle a -> b -> c -> a: each node contributes itself; the fixed
    # point is the full strongly-connected reach at every node.
    nodes = ["a", "b", "c"]
    preds = {"a": ["c"], "b": ["a"], "c": ["b"]}

    def transfer(node, incoming):
        return incoming | {node}

    result = fixed_point(nodes, preds, transfer)
    assert result == {
        "a": frozenset("abc"),
        "b": frozenset("abc"),
        "c": frozenset("abc"),
    }


def test_fixed_point_boundary_seeds_propagate():
    # A gen/kill-style transfer that re-derives node 1's seed keeps the
    # boundary stable and floods it down the chain.
    nodes = [1, 2, 3]
    preds = {2: [1], 3: [2]}
    gen = {1: frozenset({"seed"})}
    result = fixed_point(
        nodes,
        preds,
        lambda node, incoming: incoming | gen.get(node, frozenset()),
        boundary=gen,
    )
    assert result[3] == frozenset({"seed"})


def test_interval_hull_and_poisoning():
    assert Interval.hull([1.0, -2.0, 3.0]) == Interval(-2.0, 3.0)
    assert Interval.hull([]) is None
    poisoned = Interval.hull([1.0, math.nan])
    assert poisoned is not None and not poisoned.finite
    inf_hull = Interval.hull([1.0, math.inf])
    assert not inf_hull.finite


def test_interval_arithmetic():
    a = Interval(-1.0, 2.0)
    b = Interval(3.0, 4.0)
    assert a + b == Interval(2.0, 6.0)
    assert a.scaled(2.0) == Interval(-2.0, 4.0)
    assert a.scaled(-1.0) == Interval(-2.0, 1.0)
    assert Interval(1.0, 2.0).sign == "positive"
    assert Interval(-2.0, -1.0).sign == "negative"
    assert Interval(0.0, 0.0).sign == "zero"
    assert a.sign == "mixed"
    assert a.to_list() == [-1.0, 2.0]
    with pytest.raises(ValueError):
        Interval(2.0, 1.0)
