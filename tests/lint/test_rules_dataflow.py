"""The RA6xx rule family fires on proofs, not heuristics.

Each rule attaches machine-checkable evidence: RA601/RA603 embed the
prover's certificate (with its independent re-check result), RA602 the
derived-vs-declared lifetime diff, RA604 the cost intervals and the
one-path witness energy.  Healthy instances must stay silent — the
family's value is zero false positives, verified here on scheduled
kernels and in ``tests/lint/test_prove.py`` across the fuzz sweep.
"""

from __future__ import annotations

import math

from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig
from repro.lifetimes.intervals import Lifetime
from repro.ir.values import DataVariable
from repro.lint import LintConfig, Severity, run_lint
from repro.scheduling.list_scheduler import list_schedule
from repro.service.manifest import parse_manifest
from repro.workloads.registry import kernel_block


def corrupted_fig3():
    manifest = {
        "schema": "repro.service/manifest/v1",
        "jobs": [
            {"kind": "figure", "name": "fig3", "registers": 0, "divisor": 2}
        ],
    }
    return parse_manifest(manifest).build()[0].problem


def healthy_scheduled(registers=4):
    block = kernel_block("fir", taps=8, seed=7)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(
        schedule, register_count=registers
    )
    return problem, schedule


def codes_of(problem, schedule=None, select=(), options=None):
    config = LintConfig(select=tuple(select), options=options or {})
    return run_lint(problem, schedule=schedule, config=config)


# ----------------------------------------------------------------------
# RA601 — pressure proofs
# ----------------------------------------------------------------------
def test_ra601_fires_with_checked_certificate():
    report = codes_of(corrupted_fig3(), select=("RA601",))
    assert "RA601" in report.codes
    finding = next(d for d in report.diagnostics if d.code == "RA601")
    assert finding.severity is Severity.ERROR
    evidence = finding.evidence
    assert evidence is not None
    assert evidence["certificate"] in ("forced-pressure", "cut-capacity")
    assert evidence["checked"] is True
    assert evidence["required"] > evidence["available"]


def test_ra601_silent_on_healthy_instances():
    problem, schedule = healthy_scheduled()
    report = codes_of(problem, schedule, select=("RA601", "RA603"))
    assert report.codes == ()


# ----------------------------------------------------------------------
# RA602 — schedule/lifetime disagreement
# ----------------------------------------------------------------------
def test_ra602_silent_when_lifetimes_match_schedule():
    problem, schedule = healthy_scheduled()
    report = codes_of(problem, schedule, select=("RA602",))
    assert report.codes == ()


def test_ra602_flags_tampered_lifetime():
    problem, schedule = healthy_scheduled()
    name, original = next(iter(sorted(problem.lifetimes.items())))
    tampered = object.__new__(Lifetime)
    object.__setattr__(tampered, "variable", original.variable)
    object.__setattr__(tampered, "write_time", original.write_time)
    object.__setattr__(
        tampered,
        "read_times",
        tuple(t + 1 for t in original.read_times),
    )
    object.__setattr__(tampered, "live_out", original.live_out)
    problem.lifetimes[name] = tampered
    report = codes_of(problem, schedule, select=("RA602",))
    assert "RA602" in report.codes
    finding = next(d for d in report.diagnostics if d.code == "RA602")
    assert finding.evidence["variable"] == name
    assert finding.evidence["derived"] != finding.evidence["declared"]


def test_ra602_flags_phantom_lifetime():
    problem, schedule = healthy_scheduled()
    phantom = object.__new__(Lifetime)
    object.__setattr__(
        phantom, "variable", DataVariable("ghost", 16, ())
    )
    object.__setattr__(phantom, "write_time", 1)
    object.__setattr__(phantom, "read_times", (2,))
    object.__setattr__(phantom, "live_out", False)
    problem.lifetimes["ghost"] = phantom
    report = codes_of(problem, schedule, select=("RA602",))
    assert "RA602" in report.codes
    assert any(
        d.evidence and d.evidence.get("derived") is None
        for d in report.diagnostics
    )


def test_ra602_skipped_without_a_schedule():
    report = codes_of(corrupted_fig3(), schedule=None, select=("RA602",))
    assert report.codes == ()


# ----------------------------------------------------------------------
# RA604 — energy cost intervals
# ----------------------------------------------------------------------
class _EvilModel:
    """Charges memory normally but *credits* every register access."""

    def mem_read(self, v):
        return 10.0

    def mem_write(self, v):
        return 10.0

    def reg_read(self, v):
        return -500.0

    def reg_write(self, v, prev=None):
        return -500.0

    def with_voltages(self, mem_voltage, reg_voltage):
        return self


class _NaNModel(_EvilModel):
    def reg_read(self, v):
        return math.nan

    def reg_write(self, v, prev=None):
        return math.nan


def _two_var_problem(model):
    from tests.conftest import make_lifetime

    return AllocationProblem(
        {
            "a": make_lifetime("a", 1, 3),
            "b": make_lifetime("b", 2, 5),
        },
        2,
        6,
        energy_model=model,
    )


def test_ra604_fires_on_net_negative_register_chains():
    report = codes_of(_two_var_problem(_EvilModel()), select=("RA604",))
    assert "RA604" in report.codes
    finding = next(d for d in report.diagnostics if d.code == "RA604")
    assert finding.evidence["witness_energy"] < 0
    assert "intervals" in finding.evidence


def test_ra604_nonfinite_costs_escalate_to_error():
    report = codes_of(_two_var_problem(_NaNModel()), select=("RA604",))
    assert "RA604" in report.codes
    finding = next(d for d in report.diagnostics if d.code == "RA604")
    assert finding.severity is Severity.ERROR


def test_ra604_silent_on_healthy_models():
    problem, schedule = healthy_scheduled()
    report = codes_of(problem, schedule, select=("RA604",))
    assert report.codes == ()


def test_ra604_tolerance_option_suppresses_tiny_credits():
    report = codes_of(
        _two_var_problem(_EvilModel()),
        select=("RA604",),
        options={"RA604": {"tolerance": 1e9}},
    )
    assert report.codes == ()


# ----------------------------------------------------------------------
# family smoke: corrupted admission fixture trips proofs + structure
# ----------------------------------------------------------------------
def test_corrupted_fig3_full_report_has_proof_and_structure():
    report = run_lint(corrupted_fig3())
    assert "RA601" in report.codes
    assert report.at_least(Severity.ERROR)
