"""Deliberately corrupted instances trigger exactly the intended rules.

One scenario per rule family RA1xx-RA5xx (plus individual rules where a
targeted corruption exists).  Corruptions bypass the constructors'
validation on purpose — the lint engine's whole job is to survive and
report instances the constructors would reject — via three techniques:

* mutating ``Schedule.start`` after construction (validation only runs
  in ``__post_init__``);
* swapping a corrupted ``Lifetime`` (built with ``object.__new__``)
  into the problem's lifetime dict after the problem validated;
* doctoring a ``LintContext`` with a mutated prebuilt network and
  invoking the rule body directly.
"""

from __future__ import annotations

from repro.core.network_builder import build_network
from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime
from repro.lint import LintConfig, LintContext, Severity, get_rule, run_lint
from repro.scheduling.schedule import Schedule
from tests.conftest import make_lifetime


def corrupt_lifetime(name, write, reads, live_out=False):
    """Build a Lifetime without running its validating constructor."""
    lifetime = object.__new__(Lifetime)
    object.__setattr__(lifetime, "variable", DataVariable(name, 16, ()))
    object.__setattr__(lifetime, "write_time", write)
    object.__setattr__(lifetime, "read_times", tuple(reads))
    object.__setattr__(lifetime, "live_out", live_out)
    return lifetime


def simple_problem(registers=2, horizon=5, **options):
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 2, 5),
    }
    return AllocationProblem(lifetimes, registers, horizon, **options)


def scheduled_problem():
    block = BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("m", OpCode.MUL, inputs=("a", "b"), output="c", delay=2),
            Operation("n", OpCode.NEG, inputs=("c",), output="d"),
        ],
    )
    schedule = Schedule(block, {"i0": 1, "i1": 1, "m": 2, "n": 4})
    problem = AllocationProblem.from_schedule(schedule, register_count=2)
    return problem, schedule


def codes_of(problem, schedule=None, select=()):
    report = run_lint(
        problem, schedule=schedule, config=LintConfig(select=tuple(select))
    )
    assert "RA900" not in report.codes, report.summary()
    return report


# ----------------------------------------------------------------------
# RA1xx — schedule
# ----------------------------------------------------------------------
def test_ra101_use_before_def():
    problem, schedule = scheduled_problem()
    schedule.start["n"] = 2  # m writes c at the bottom of step 3
    # (the early start also shrinks the length, so RA105 would fire too)
    report = codes_of(problem, schedule, select=("RA101",))
    assert report.codes == ("RA101",)
    finding = report.diagnostics[0]
    assert finding.severity is Severity.ERROR
    assert finding.location.op == "n"
    assert finding.hint


def test_ra102_missing_operation():
    problem, schedule = scheduled_problem()
    del schedule.start["n"]
    report = codes_of(problem, schedule, select=("RA1",))
    # RA105 stays silent: the length is undefined with an op missing.
    assert report.codes == ("RA102",)


def test_ra103_unknown_operation():
    problem, schedule = scheduled_problem()
    schedule.start["ghost"] = 1
    report = codes_of(problem, schedule, select=("RA1",))
    assert report.codes == ("RA103",)


def test_ra104_nonpositive_step():
    problem, schedule = scheduled_problem()
    schedule.start["i0"] = 0
    report = codes_of(problem, schedule, select=("RA1",))
    assert "RA104" in report.codes


def test_ra105_horizon_mismatch():
    problem, schedule = scheduled_problem()
    schedule.start["n"] = 6  # length becomes 6, problem horizon stays 4
    report = codes_of(problem, schedule, select=("RA105",))
    assert report.codes == ("RA105",)


def test_schedule_rules_skip_without_schedule():
    report = codes_of(simple_problem(), schedule=None, select=("RA1",))
    assert report.codes == ()


# ----------------------------------------------------------------------
# RA2xx — lifetimes
# ----------------------------------------------------------------------
def test_ra201_zero_length_lifetime():
    problem = simple_problem()
    problem.lifetimes["a"] = corrupt_lifetime("a", 4, (2,))
    report = codes_of(problem, select=("RA2",))
    assert "RA201" in report.codes


def test_ra202_dead_write():
    problem = simple_problem()
    problem.lifetimes["a"] = corrupt_lifetime("a", 1, ())
    report = codes_of(problem, select=("RA2",))
    assert "RA202" in report.codes
    assert "RA201" not in report.codes  # no reads != inverted reads


def test_ra203_read_past_horizon():
    problem = simple_problem(horizon=5)
    problem.lifetimes["a"] = corrupt_lifetime("a", 1, (9,))
    report = codes_of(problem, select=("RA203",))
    assert report.codes == ("RA203",)


def test_ra204_key_mismatch():
    problem = simple_problem()
    problem.lifetimes["a"] = make_lifetime("z", 1, 4)
    report = codes_of(problem, select=("RA204",))
    assert report.codes == ("RA204",)
    assert report.diagnostics[0].location.variable == "z"


def test_ra205_broken_tiling():
    problem = simple_problem()
    segments = dict(problem.segments)  # force + copy the cache
    broken = list(segments["a"])
    object.__setattr__(broken[-1], "end", 3)  # lifetime of a ends at 4
    report = codes_of(problem, select=("RA205",))
    assert report.codes == ("RA205",)


def test_clean_instance_has_no_lifetime_findings():
    report = codes_of(simple_problem())
    assert report.codes == ()


# ----------------------------------------------------------------------
# RA3xx — restricted memory (section 5.2)
# ----------------------------------------------------------------------
def overloaded_problem(registers=1):
    lifetimes = {
        "u": make_lifetime("u", 2, 4),
        "v": make_lifetime("v", 2, 4),
        "w": make_lifetime("w", 1, 7),
    }
    return AllocationProblem(
        lifetimes,
        registers,
        6,
        memory=MemoryConfig(divisor=6, voltage=2.0, offset=1),
    )


def test_ra301_forced_density_exceeds_registers():
    report = codes_of(overloaded_problem(1), select=("RA301",))
    assert report.codes == ("RA301",)
    finding = report.diagnostics[0]
    assert finding.severity is Severity.ERROR
    assert "needs R >= 2" in finding.message


def test_ra301_silent_when_feasible():
    report = codes_of(overloaded_problem(2), select=("RA301",))
    assert report.codes == ()


def test_ra302_no_access_step_in_block():
    problem = simple_problem(
        memory=MemoryConfig(divisor=4, voltage=3.5, offset=50)
    )
    report = codes_of(problem, select=("RA302",))
    assert report.codes == ("RA302",)
    assert report.diagnostics[0].severity is Severity.WARNING


def test_ra303_unknown_pin():
    problem = simple_problem(
        forced_segments=frozenset({("ghost", 0), ("a", 99)})
    )
    report = codes_of(problem, select=("RA303",))
    assert [d.location.variable for d in report.diagnostics] == ["a", "ghost"]


def test_ra304_access_period_exceeds_block():
    problem = simple_problem(
        horizon=5, memory=MemoryConfig(divisor=9, voltage=3.5)
    )
    report = codes_of(problem, select=("RA304",))
    assert report.codes == ("RA304",)
    assert report.diagnostics[0].severity is Severity.NOTE


# ----------------------------------------------------------------------
# RA4xx — energy model
# ----------------------------------------------------------------------
class NegativeModel(StaticEnergyModel):
    """Model returning a physically impossible negative read energy."""

    def mem_read(self, variable):
        return -1.0


class RaisingModel(StaticEnergyModel):
    """Model that cannot cost any variable."""

    def mem_write(self, variable):
        raise ValueError("uncostable variable")


def test_ra401_negative_energy():
    problem = simple_problem(energy_model=NegativeModel())
    report = codes_of(problem, select=("RA401",))
    assert report.codes == ("RA401",)
    assert all(d.location.detail == "mem_read" for d in report.diagnostics)


def test_ra402_model_raises():
    problem = simple_problem(energy_model=RaisingModel())
    report = codes_of(problem, select=("RA402",))
    assert report.codes == ("RA402",)
    assert "uncostable" in report.diagnostics[0].message


def test_ra402_failure_also_fails_network_construction():
    problem = simple_problem(energy_model=RaisingModel())
    report = codes_of(problem)
    assert "RA402" in report.codes and "RA500" in report.codes


def test_ra403_supply_below_frequency():
    # At 2.0 V the CMOS delay factor is ~4.9x: far too slow for f/2.
    problem = simple_problem(memory=MemoryConfig(divisor=2, voltage=2.0))
    report = codes_of(problem, select=("RA403",))
    assert report.codes == ("RA403",)


def test_ra403_accepts_scaled_operating_points():
    problem = simple_problem(memory=MemoryConfig.scaled(2))
    report = codes_of(problem, select=("RA403",))
    assert report.codes == ()


def test_ra403_slack_is_configurable():
    problem = simple_problem(memory=MemoryConfig(divisor=2, voltage=2.0))
    config = LintConfig(
        select=("RA403",), options={"RA403": {"delay_slack": 10.0}}
    )
    assert run_lint(problem, config=config).codes == ()


def test_ra404_registers_never_beneficial():
    model = StaticEnergyModel().with_voltages(0.5, 5.0)
    problem = simple_problem(
        energy_model=model, memory=MemoryConfig(voltage=0.5)
    )
    report = codes_of(problem, select=("RA404",))
    assert report.codes == ("RA404",)
    assert report.diagnostics[0].severity is Severity.NOTE


def test_ra405_operating_point_mismatch():
    # Model charges memory at the nominal 5 V, memory runs at 3 V.
    problem = simple_problem(memory=MemoryConfig(divisor=3, voltage=3.0))
    report = codes_of(problem, select=("RA405",))
    assert report.codes == ("RA405",)


# ----------------------------------------------------------------------
# RA5xx — network structure
# ----------------------------------------------------------------------
def doctored_context(problem, built):
    """A LintContext whose cached network is the (mutated) *built*."""
    ctx = LintContext(problem)
    ctx.__dict__["_network_result"] = (built, None)
    return ctx


def test_ra500_network_construction_failure():
    problem = simple_problem(energy_model=RaisingModel())
    report = codes_of(problem, select=("RA500",))
    assert report.codes == ("RA500",)


def test_ra501_inverted_arc_bounds():
    problem = simple_problem()
    built = build_network(problem)
    arc = built.segment_arcs[("a", 0)]
    object.__setattr__(arc, "lower", arc.capacity + 1)
    ctx = doctored_context(problem, built)
    findings = list(get_rule("RA501").check(ctx))
    assert len(findings) == 1
    assert "exceeds capacity" in findings[0].message


def test_ra502_non_adjacent_handoff():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 4, 6),
    }
    problem = AllocationProblem(lifetimes, 1, 6, graph_style="adjacent")
    built = build_network(problem)
    handoffs = [
        arc
        for arc in built.network.arcs
        if isinstance(arc.data, tuple)
        and arc.data[0] == "handoff"
        and arc.data[1] is not None
        and arc.data[2] is not None
    ]
    assert handoffs, "expected at least one segment-to-segment handoff"
    ctx = doctored_context(problem, built)
    assert list(get_rule("RA502").check(ctx)) == []
    # Stretch the idle window of one handoff across the b density region.
    object.__setattr__(handoffs[0].data[2], "start", 6)
    findings = list(get_rule("RA502").check(ctx))
    assert findings and "maximum-density point" in findings[0].message


def test_ra503_unreachable_segment():
    problem = simple_problem()
    built = build_network(problem)
    arc = built.segment_arcs[("a", 0)]
    object.__setattr__(arc, "tail", ("orphan", "node"))
    built.network.add_node(("orphan", "node"))
    ctx = doctored_context(problem, built)
    findings = list(get_rule("RA503").check(ctx))
    assert [f.location.variable for f in findings] == ["a"]


def test_ra504_insufficient_source_capacity():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    problem = AllocationProblem(
        lifetimes, 10, 4, allow_unused_registers=False
    )
    report = codes_of(problem, select=("RA504",))
    assert report.codes == ("RA504",)
    assert "R = 10" in report.diagnostics[0].message


def test_clean_network_has_no_ra5_findings():
    report = codes_of(simple_problem(), select=("RA5",))
    assert report.codes == ()


# ----------------------------------------------------------------------
# engine robustness
# ----------------------------------------------------------------------
def test_ra900_reported_when_a_rule_crashes():
    problem = simple_problem()
    entry = get_rule("RA101")

    def exploding(ctx):
        raise RuntimeError("boom")

    broken = type(entry)(
        code=entry.code,
        name=entry.name,
        severity=entry.severity,
        summary=entry.summary,
        check=exploding,
        hint=entry.hint,
    )
    import repro.lint.registry as registry

    original = registry._REGISTRY[entry.code]
    registry._REGISTRY[entry.code] = broken
    try:
        report = run_lint(
            problem,
            schedule=None,
            config=LintConfig(select=("RA101",)),
        )
    finally:
        registry._REGISTRY[entry.code] = original
    assert report.codes == ("RA900",)
    assert "boom" in report.diagnostics[0].message
