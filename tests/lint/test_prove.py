"""Soundness of the solver-free infeasibility prover.

The RA6xx prover (:mod:`repro.lint.prove`) is deliberately incomplete
but must be *sound*: a certificate is a machine-checkable promise that
the min-cost-flow solver will raise ``InfeasibleFlowError`` on the same
instance.  The acceptance bar of the PR — zero false infeasibility
claims across >= 50 seeded fuzz instances — is enforced here, together
with targeted certificate shapes on hand-corrupted instances.
"""

from __future__ import annotations

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig
from repro.exceptions import InfeasibleFlowError
from repro.lint.prove import (
    InfeasibilityCertificate,
    check_certificate,
    find_certificates,
    prove_infeasible,
)
from repro.service.manifest import parse_manifest
from repro.verify.fuzz import build_problem, draw_case
from repro.workloads.random_blocks import spawn_rng
from tests.conftest import make_lifetime

#: Instances drawn for the agreement sweep (acceptance bar: >= 50).
FUZZ_INSTANCES = 60


def corrupted_fig3():
    """The admission-gate fixture: fig3 at R=0 under divisor 2."""
    manifest = {
        "schema": "repro.service/manifest/v1",
        "jobs": [
            {"kind": "figure", "name": "fig3", "registers": 0, "divisor": 2}
        ],
    }
    return parse_manifest(manifest).build()[0].problem


def test_corrupted_fig3_yields_a_checked_certificate():
    problem = corrupted_fig3()
    certificate = prove_infeasible(problem)
    assert certificate is not None
    assert certificate.kind in (
        "forced-pressure",
        "cut-capacity",
        "unreachable-forced-segment",
    )
    assert check_certificate(problem, certificate)
    with pytest.raises(InfeasibleFlowError):
        allocate(problem)


def test_forced_pressure_certificate_details():
    problem = corrupted_fig3()
    certs = find_certificates(problem)
    forced = [c for c in certs if c.kind == "forced-pressure"]
    assert forced, "fig3 at R=0/divisor 2 must have a forced segment"
    cert = forced[0]
    assert cert.required > cert.available
    assert cert.witness, "forced-pressure certificates name the segments"


def test_certificate_roundtrips_through_dict():
    problem = corrupted_fig3()
    cert = prove_infeasible(problem)
    rebuilt = InfeasibilityCertificate.from_dict(cert.to_dict())
    assert rebuilt == cert
    assert check_certificate(problem, rebuilt)


def test_feasible_instance_has_no_certificate():
    problem = AllocationProblem(
        {
            "a": make_lifetime("a", 1, 3),
            "b": make_lifetime("b", 2, 5),
        },
        2,
        6,
    )
    assert prove_infeasible(problem) is None
    allocate(problem)  # must not raise


def test_zero_registers_unrestricted_memory_is_not_flagged():
    # R = 0 with free memory access is feasible (everything spills);
    # an over-eager cut bound here would be a false claim.
    problem = AllocationProblem(
        {
            "a": make_lifetime("a", 1, 3),
            "b": make_lifetime("b", 2, 5),
        },
        0,
        6,
    )
    assert prove_infeasible(problem) is None
    allocate(problem)


def test_prover_never_contradicts_the_solver_on_seeded_instances():
    """Acceptance bar: 0 false infeasibility claims on >= 50 instances."""
    plan_rng = spawn_rng(404, "prove-agreement")
    proofs = infeasible = 0
    for index in range(FUZZ_INSTANCES):
        case = draw_case(plan_rng, index)
        rng = spawn_rng(404, "prove-agreement-case", index)
        problem = build_problem(case, rng)
        certificate = prove_infeasible(problem)
        try:
            allocate(problem)
            solved = True
        except InfeasibleFlowError:
            solved = False
            infeasible += 1
        if certificate is not None:
            proofs += 1
            assert not solved, (
                f"case {index}: prover claimed infeasibility "
                f"({certificate.kind}: {certificate.detail}) but the "
                f"solver found a solution"
            )
            assert check_certificate(problem, certificate), (
                f"case {index}: {certificate.kind} certificate failed "
                f"its independent re-check"
            )
    # The sweep must actually exercise both sides of the oracle.
    assert infeasible > 0, "sweep drew no infeasible instances"
    assert proofs > 0, "sweep produced no certificates"


def test_restricted_memory_pressure_is_proved():
    # Two overlapping lifetimes, one register, memory writable only on
    # even steps: the divisor forces both into the register file at the
    # overlap, which a time-cut counts as impossible.
    problem = AllocationProblem(
        {
            "a": make_lifetime("a", 1, 4),
            "b": make_lifetime("b", 1, 4),
            "c": make_lifetime("c", 1, 4),
        },
        1,
        6,
        memory=MemoryConfig(divisor=3),
    )
    try:
        allocate(problem)
        feasible = True
    except InfeasibleFlowError:
        feasible = False
    certificate = prove_infeasible(problem)
    if certificate is not None:
        assert not feasible
        assert check_certificate(problem, certificate)
