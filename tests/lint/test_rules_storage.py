"""Storage-hierarchy lint rules (RA305/RA306/RA505/RA605) and the
bank-capacity infeasibility certificate."""

import dataclasses

from repro.core.network_builder import build_network
from repro.core.problem import AllocationProblem
from repro.core.storage import StorageSpec
from repro.lint import run_lint
from repro.lint.prove import (
    InfeasibilityCertificate,
    check_certificate,
    find_certificates,
)
from tests.conftest import make_lifetime


def banked_problem(registers=2, capacity=None, bank_count=2, horizon=6):
    # "a" written step 1 read step 2 straddles the two staggered banks'
    # phases, so multi-bank specs have a banking-forced segment.
    lifetimes = {
        "a": make_lifetime("a", 1, 2),
        "b": make_lifetime("b", 1, 5),
        "c": make_lifetime("c", 2, 6),
    }
    return AllocationProblem(
        lifetimes,
        register_count=registers,
        horizon=horizon,
        storage=StorageSpec.banked(bank_count, 2, capacity=capacity),
    )


def codes(report):
    return {d.code for d in report}


# ---------------------------------------------------------------------------
# RA305 / RA306
# ---------------------------------------------------------------------------

def test_ra305_lists_banking_forced_segments():
    report = run_lint(banked_problem())
    notes = [d for d in report if d.code == "RA305"]
    assert len(notes) == 1
    assert "a#0" in notes[0].message
    assert notes[0].severity.name == "NOTE"


def test_ra305_silent_without_fragmentation():
    problem = banked_problem().with_options(storage=None)
    assert "RA305" not in codes(run_lint(problem))
    degenerate = banked_problem(bank_count=1)
    assert "RA305" not in codes(run_lint(degenerate))


def test_ra306_flags_density_over_total_capacity():
    # Peak density 2 (half-point 1.5): R=1 + 2 banks x capacity 0 = 1 < 2.
    report = run_lint(banked_problem(registers=1, capacity=0))
    errors = [d for d in report if d.code == "RA306"]
    assert len(errors) == 1
    assert errors[0].severity.name == "ERROR"
    assert errors[0].evidence["peak"] == 2
    assert errors[0].evidence["register_count"] == 1


def test_ra306_silent_when_any_bank_uncapped():
    assert "RA306" not in codes(run_lint(banked_problem(registers=1)))
    roomy = banked_problem(registers=2, capacity=3)
    assert "RA306" not in codes(run_lint(roomy))


# ---------------------------------------------------------------------------
# RA505
# ---------------------------------------------------------------------------

def test_ra505_silent_on_well_formed_networks():
    assert "RA505" not in codes(run_lint(banked_problem()))
    assert "RA505" not in codes(run_lint(banked_problem(bank_count=1)))


def test_ra505_flags_missing_bank_structures(monkeypatch):
    problem = banked_problem()
    built = build_network(problem)
    assert built.banks is not None
    doctored = dataclasses.replace(built, banks=None)
    import repro.lint.context as context_mod

    monkeypatch.setattr(
        context_mod.LintContext,
        "built",
        property(lambda self: doctored),
    )
    assert "RA505" in codes(run_lint(problem))


def test_ra505_flags_corrupted_era_chain(monkeypatch):
    problem = banked_problem()
    built = build_network(problem)
    bad_bank = dataclasses.replace(
        built.banks[0],
        era=tuple(e + 1 for e in built.banks[0].era),
    )
    doctored = dataclasses.replace(
        built, banks=(bad_bank,) + built.banks[1:]
    )
    import repro.lint.context as context_mod

    monkeypatch.setattr(
        context_mod.LintContext,
        "built",
        property(lambda self: doctored),
    )
    assert "RA505" in codes(run_lint(problem))


# ---------------------------------------------------------------------------
# RA605 + the bank-capacity certificate
# ---------------------------------------------------------------------------

def infeasible_problem():
    return banked_problem(registers=1, capacity=0)


def test_bank_capacity_certificate_found_and_checks():
    certs = [
        c
        for c in find_certificates(infeasible_problem())
        if c.kind == "bank-capacity"
    ]
    assert len(certs) == 1
    cert = certs[0]
    assert cert.required == 2 and cert.available == 1
    assert cert.half_point == 1
    assert cert.witness == ("a", "b")
    assert check_certificate(infeasible_problem(), cert)


def test_bank_capacity_certificate_rejects_tampering():
    problem = infeasible_problem()
    [cert] = [
        c for c in find_certificates(problem) if c.kind == "bank-capacity"
    ]
    looser = dataclasses.replace(cert, available=cert.available + 5)
    assert not check_certificate(problem, looser)
    moved = dataclasses.replace(cert, half_point=problem.horizon + 3)
    assert not check_certificate(problem, moved)
    padded = dataclasses.replace(cert, witness=cert.witness + ("ghost",))
    assert not check_certificate(problem, padded)


def test_bank_capacity_certificate_round_trips():
    problem = infeasible_problem()
    [cert] = [
        c for c in find_certificates(problem) if c.kind == "bank-capacity"
    ]
    rebuilt = InfeasibilityCertificate.from_dict(cert.to_dict())
    assert rebuilt == cert
    assert check_certificate(problem, rebuilt)


def test_no_bank_capacity_certificate_without_full_caps():
    uncapped = banked_problem(registers=1)
    assert not any(
        c.kind == "bank-capacity" for c in find_certificates(uncapped)
    )
    feasible = banked_problem(registers=3, capacity=2)
    assert not any(
        c.kind == "bank-capacity" for c in find_certificates(feasible)
    )


def test_ra605_reports_the_proof():
    report = run_lint(infeasible_problem())
    errors = [d for d in report if d.code == "RA605"]
    assert len(errors) == 1
    assert errors[0].severity.name == "ERROR"
    assert errors[0].evidence["certificate"] == "bank-capacity"
    assert "RA605" not in codes(run_lint(banked_problem()))
