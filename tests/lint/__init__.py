"""Tests for the pre-solve static analysis engine (:mod:`repro.lint`)."""
