"""The ``dag`` fuzz family: end-to-end pipeline sweeps under oracle."""

import pytest

from repro.verify.fuzz import SCHEMA, run_fuzz


def test_dag_sweep_runs_clean_under_the_oracle():
    report = run_fuzz(seed=5, iters=4, family="dag")
    assert report["schema"] == SCHEMA
    assert report["family"] == "dag"
    assert report["iterations"] == 4
    assert report["statuses"]["violation"] == 0
    assert report["failures"] == []
    assert report["statuses"]["ok"] > 0


def test_dag_coverage_tracks_the_drawn_axes():
    report = run_fuzz(seed=5, iters=6, family="dag")
    coverage = report["coverage"]
    assert set(coverage) == {"workload", "cores", "register_count"}
    assert sum(coverage["workload"].values()) == 6
    assert set(coverage["workload"]) <= {"diamond", "fanin"}


def test_dag_runs_are_deterministic():
    first = run_fuzz(seed=13, iters=3, family="dag")
    second = run_fuzz(seed=13, iters=3, family="dag")
    assert first == second


def test_unknown_family_still_rejected():
    with pytest.raises(ValueError, match="family"):
        run_fuzz(seed=1, iters=1, family="hyperbolic")
