"""Tests for the seeded fuzz harness and its shrinking minimizer."""

import json
import random

from repro.core.problem import AllocationProblem
from repro.verify.fuzz import (
    SCHEMA,
    draw_case,
    render_report,
    run_case,
    run_fuzz,
    run_problem,
    shrink_case,
)
from repro.workloads.random_blocks import random_lifetimes, spawn_rng
from repro.workloads.serialize import problem_from_dict


def test_small_run_clean():
    report = run_fuzz(0, 12)
    assert report["schema"] == SCHEMA
    assert report["statuses"]["violation"] == 0
    assert report["failures"] == []
    total = sum(report["statuses"].values())
    assert total == report["iterations"] == 12


def test_runs_are_deterministic():
    first = run_fuzz(3, 10)
    second = run_fuzz(3, 10)
    assert render_report(first) == render_report(second)


def test_different_seeds_differ():
    assert run_fuzz(0, 10)["coverage"] != run_fuzz(1, 10)["coverage"]


def test_cases_replay_independently():
    # Case k is reproducible without running cases 0..k-1: the plan RNG
    # and each case RNG are derived, not shared.
    seed = 7
    plan = spawn_rng(seed, "fuzz-plan")
    cases = [draw_case(plan, i) for i in range(6)]
    full = [run_case(seed, case) for case in cases]
    alone = run_case(seed, cases[4])
    assert alone.status == full[4].status
    assert alone.case == cases[4]


def test_degenerate_families_covered():
    report = run_fuzz(0, 16)
    families = set(report["coverage"]["degenerate"])
    assert families == {
        "none",
        "zero-registers",
        "surplus-registers",
        "minimal-lifetimes",
        "split-heavy",
    }
    assert "0" in report["coverage"]["register_count"]


def test_report_round_trips_json():
    report = run_fuzz(2, 8)
    assert json.loads(render_report(report)) == report


def test_run_problem_statuses():
    lifetimes = random_lifetimes(random.Random(1), count=6, horizon=8)
    horizon = max(l.end for l in lifetimes.values())
    ok = AllocationProblem(lifetimes, 2, horizon)
    status, violations = run_problem(ok)
    assert status == "ok" and violations == []


def test_shrinker_minimises_and_preserves_failure():
    # Use an artificial failure predicate via a wrapped battery: the
    # shrinker must keep only what sustains the failure.  We simulate a
    # "bug" that triggers whenever variable 'v0' is present by shrinking
    # a real instance against run_problem patched through duck typing:
    # instead, exercise the real shrinker on a real (passing) instance
    # and check the contract that a passing instance shrinks to itself.
    lifetimes = random_lifetimes(random.Random(5), count=8, horizon=9)
    horizon = max(l.end for l in lifetimes.values())
    problem = AllocationProblem(lifetimes, 3, horizon)
    shrunk = shrink_case(problem)
    # No violation -> nothing may be removed.
    assert shrunk.lifetimes.keys() == problem.lifetimes.keys()
    assert shrunk.register_count == problem.register_count


def test_shrinker_reduces_failing_instance(monkeypatch):
    # Inject a fake oracle violation that fires iff 'v2' is alive, and
    # check the minimizer strips everything else.
    import repro.verify.fuzz as fuzz_mod
    from repro.verify.oracles import Violation

    def fake_run_problem(problem, use_lp=None):
        if "v2" in problem.lifetimes:
            return "violation", [Violation("fake", "v2 present")]
        return "ok", []

    monkeypatch.setattr(fuzz_mod, "run_problem", fake_run_problem)
    lifetimes = random_lifetimes(random.Random(6), count=9, horizon=10)
    horizon = max(l.end for l in lifetimes.values())
    problem = AllocationProblem(lifetimes, 4, horizon)
    shrunk = fuzz_mod.shrink_case(problem)
    assert set(shrunk.lifetimes) == {"v2"}
    assert shrunk.register_count == 0
    assert shrunk.horizon <= problem.horizon


def test_failure_entries_carry_reproducer(monkeypatch):
    # Force every case to "fail" and check the report embeds a
    # round-trippable minimized instance.
    import repro.verify.fuzz as fuzz_mod
    from repro.verify.oracles import Violation

    real = fuzz_mod.run_problem

    def failing_run_problem(problem, use_lp=None):
        status, violations = real(problem, use_lp=use_lp)
        if status == "ok":
            return "violation", [Violation("fake", "synthetic failure")]
        return status, violations

    monkeypatch.setattr(fuzz_mod, "run_problem", failing_run_problem)
    report = fuzz_mod.run_fuzz(0, 4, shrink=False)
    assert report["statuses"]["violation"] >= 1
    entry = report["failures"][0]
    assert entry["violations"][0]["oracle"] == "fake"
    rebuilt = problem_from_dict(entry["minimized"])
    assert rebuilt.register_count == entry["minimized_size"]["register_count"]
    assert len(rebuilt.lifetimes) == entry["minimized_size"]["variables"]
