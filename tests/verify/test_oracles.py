"""Tests for the allocation-level invariant oracles."""

import random
from dataclasses import replace

import pytest

from repro.core.pipeline import allocate_block
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig
from repro.flow.graph import FlowResult
from repro.verify.oracles import (
    ALLOCATION_ORACLES,
    OracleViolation,
    check_allocation,
    oracle_codegen_agreement,
    oracle_energy_agreement,
    oracle_split_lower_bounds,
    oracle_total_flow,
)
from repro.workloads.random_blocks import random_dfg, random_lifetimes
from tests.conftest import make_lifetime


def solved(register_count=3, divisor=1, seed=11, count=8, horizon=10):
    lifetimes = random_lifetimes(
        random.Random(seed), count=count, horizon=horizon
    )
    problem = AllocationProblem(
        lifetimes,
        register_count=register_count,
        horizon=max(l.end for l in lifetimes.values()),
        memory=MemoryConfig(divisor=divisor),
    )
    return allocate(problem)


def test_clean_allocation_passes_battery():
    assert check_allocation(solved()) == []


def test_restricted_memory_allocation_passes_battery():
    assert check_allocation(solved(register_count=5, divisor=2)) == []


def test_zero_registers_pass_battery():
    assert check_allocation(solved(register_count=0)) == []


def test_battery_names_are_oracle_keys():
    allocation = solved()
    for name, oracle in ALLOCATION_ORACLES.items():
        oracle(allocation)  # each runs standalone
        assert check_allocation(allocation, oracles=(name,)) == []


def test_total_flow_rejects_wrong_value():
    allocation = solved(register_count=2)
    tampered = replace(
        allocation,
        flow=FlowResult(
            allocation.flow.network, list(allocation.flow.flows), 3
        ),
    )
    with pytest.raises(OracleViolation, match="total_flow"):
        oracle_total_flow(tampered)


def test_split_lower_bounds_rejects_dropped_residency():
    # Force restricted memory so at least one segment is must-register,
    # then claim it lives in memory: the oracle must object.
    allocation = solved(register_count=5, divisor=2, seed=4)
    forced_keys = [
        seg.key
        for segs in allocation.problem.segments.values()
        for seg in segs
        if allocation.problem.is_forced(seg)
    ]
    if not forced_keys:
        pytest.skip("instance drew no forced segments")
    residency = dict(allocation.residency)
    residency.pop(forced_keys[0])
    with pytest.raises(OracleViolation, match="split_lower_bounds"):
        oracle_split_lower_bounds(replace(allocation, residency=residency))


def test_energy_agreement_rejects_tampered_objective():
    allocation = solved()
    tampered = replace(allocation, objective=allocation.objective + 1.0)
    with pytest.raises(OracleViolation, match="energy_agreement"):
        oracle_energy_agreement(tampered)


def test_violations_returned_as_data():
    allocation = solved()
    tampered = replace(allocation, objective=allocation.objective + 1.0)
    violations = check_allocation(tampered)
    assert [v.oracle for v in violations] == ["energy_agreement"]
    assert "energy_agreement" in violations[0].message


def test_forced_pin_reflected_in_bounds():
    # An explicit forced_segments pin must raise the re-derived bound.
    lifetimes = {
        "a": make_lifetime("a", 1, (4,)),
        "b": make_lifetime("b", 2, (5,)),
    }
    problem = AllocationProblem(
        lifetimes,
        register_count=1,
        horizon=5,
        forced_segments=frozenset({("a", 0)}),
    )
    allocation = allocate(problem)
    assert check_allocation(allocation) == []
    assert ("a", 0) in allocation.residency


def test_codegen_agreement_on_random_blocks():
    rng = random.Random(21)
    for _ in range(3):
        block = random_dfg(rng, operations=rng.randint(8, 20))
        result = allocate_block(block, register_count=rng.randint(2, 4))
        oracle_codegen_agreement(result, rng=random.Random(5))


def test_codegen_agreement_restricted_memory():
    block = random_dfg(random.Random(9), operations=15)
    result = allocate_block(
        block, register_count=6, memory=MemoryConfig(divisor=2)
    )
    oracle_codegen_agreement(result)
