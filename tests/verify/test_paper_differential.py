"""Differential regression pins for the paper's worked examples.

Commits the expected energies of figure 1 and the table-1 RSP sweep as
constants and asserts that *every* solution method — the SSP production
solver, the cycle-cancelling solver, the scipy LP relaxation, and all
five prior-art baselines — reproduces them.  A regression in any solver,
the network construction, or the energy accounting moves one of these
numbers and trips the pin.
"""

import random

import pytest

from repro.core.network_builder import SINK, SOURCE
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, MemoryConfig
from repro.energy.voltage import max_divisor_supply
from repro.verify.differential import cross_check, run_baselines
from repro.verify.oracles import check_allocation
from repro.workloads import (
    FIGURE1_HORIZON,
    figure1_lifetimes,
    rsp_schedule,
)

# ---------------------------------------------------------------------------
# Committed expected values (static model unless noted).
# ---------------------------------------------------------------------------

#: Figure 1 with R = 2, unrestricted memory: three units of storage must
#: overflow to memory at the two density-3 regions.
FIG1_R2_ENERGY = 21.0

#: Figure 1 with R = 2 and the c = 2 restricted memory (access times
#: {1, 3, 5, 7}): restricted access makes memory residency costlier.
FIG1_R2_C2_ENERGY = 34.5

#: Figure 1 with R = 3 (= max density): everything fits in registers.
FIG1_R3_ENERGY = 7.5

#: Table-1 RSP sweep at R = 16 (activity model, seed 2024): objective per
#: memory divisor, with the memory supply scaled to the divisor.
TABLE1_ENERGY = {1: 182.5, 2: 95.433131, 4: 65.176991}

#: Table 1 prints 20 memory accesses at every operating point.
TABLE1_MEM_ACCESSES = 20


def fig1_problem(registers, divisor=1):
    return AllocationProblem(
        figure1_lifetimes(),
        register_count=registers,
        horizon=FIGURE1_HORIZON,
        memory=MemoryConfig(divisor=divisor),
    )


@pytest.mark.parametrize(
    "registers, divisor, expected",
    [
        (2, 1, FIG1_R2_ENERGY),
        (2, 2, FIG1_R2_C2_ENERGY),
        (3, 1, FIG1_R3_ENERGY),
    ],
)
def test_fig1_energy_pinned_all_solvers(registers, divisor, expected):
    problem = fig1_problem(registers, divisor)
    allocation = allocate(problem)
    assert allocation.objective == pytest.approx(expected)
    assert check_allocation(allocation) == []
    outcome = cross_check(
        allocation.flow.network, SOURCE, SINK, registers
    )
    assert outcome.agreed, outcome.message
    # Every solver's objective implies the same total energy.
    constant = problem.constant_energy()
    for name, cost in outcome.costs.items():
        assert constant + cost == pytest.approx(expected), name


def test_fig1_baselines_pinned():
    # R = 2: the four partition baselines all find the same optimum on
    # this tiny instance (it is the worked example, after all); R = 3
    # additionally admits the Chang-Pedram full binding.
    problem = fig1_problem(2)
    objectives, skipped = run_baselines(
        problem.lifetimes, problem.horizon, 2, problem.energy_model
    )
    assert skipped == ["chang-pedram"]
    for name, objective in objectives.items():
        assert objective == pytest.approx(FIG1_R2_ENERGY), name

    objectives, skipped = run_baselines(
        problem.lifetimes, problem.horizon, 3, problem.energy_model
    )
    assert skipped == []
    assert set(objectives) == {
        "two-phase",
        "left-edge",
        "graph-coloring",
        "greedy",
        "chang-pedram",
    }
    for name, objective in objectives.items():
        assert objective == pytest.approx(FIG1_R3_ENERGY), name


@pytest.mark.parametrize("divisor", sorted(TABLE1_ENERGY))
def test_table1_energy_pinned(divisor):
    schedule = rsp_schedule(rng=random.Random(2024))
    voltage = round(max_divisor_supply(divisor), 2)
    model = ActivityEnergyModel().with_voltages(voltage, 5.0)
    problem = AllocationProblem.from_schedule(
        schedule,
        register_count=16,
        energy_model=model,
        memory=MemoryConfig(divisor=divisor, voltage=voltage),
    )
    allocation = allocate(problem)
    assert allocation.objective == pytest.approx(
        TABLE1_ENERGY[divisor], abs=1e-5
    )
    assert allocation.report.mem_accesses == TABLE1_MEM_ACCESSES
    assert check_allocation(allocation) == []
    outcome = cross_check(allocation.flow.network, SOURCE, SINK, 16)
    assert outcome.agreed, outcome.message


def test_table1_voltage_scaling_monotone():
    # The pinned energies must decrease as the memory slows down and its
    # supply drops — the paper's headline table-1 trend.
    energies = [TABLE1_ENERGY[d] for d in sorted(TABLE1_ENERGY)]
    assert energies == sorted(energies, reverse=True)
