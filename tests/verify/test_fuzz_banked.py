"""The bank-conflict fuzz family: coverage, agreement, shrinking."""

import random

from repro.verify.fuzz import (
    FuzzCase,
    draw_bank_case,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.workloads.random_blocks import spawn_rng


def test_banked_sweep_has_zero_disagreements():
    # The acceptance pin: a >= 40-instance seeded sweep over bank
    # counts x port widths x access periods — every solve certified
    # (run_problem arms certify=True) and every multi-bank oracle
    # armed — must produce no differential disagreement.
    report = run_fuzz(seed=7, iters=48, family="banked", use_lp=False)
    assert report["family"] == "banked"
    assert report["iterations"] == 48
    assert report["statuses"]["violation"] == 0
    assert report["failures"] == []
    # The sweep actually exercised all three axes.
    coverage = report["coverage"]
    assert len(coverage["bank_count"]) >= 2
    assert len(coverage["bank_period"]) >= 2
    assert len(coverage["bank_ports"]) >= 2
    assert report["statuses"]["ok"] > 0


def test_banked_runs_are_deterministic():
    first = run_fuzz(seed=11, iters=8, family="banked", use_lp=False)
    second = run_fuzz(seed=11, iters=8, family="banked", use_lp=False)
    assert first == second


def test_unknown_family_rejected():
    import pytest

    with pytest.raises(ValueError, match="family"):
        run_fuzz(seed=1, iters=1, family="hierarchical")


def test_draw_bank_case_stays_in_the_grid():
    rng = spawn_rng(3, "fuzz-plan")
    for index in range(30):
        case = draw_bank_case(rng, index)
        assert case.bank_count in (1, 2, 3)
        assert case.bank_period in (1, 2, 3)
        assert case.bank_ports in (None, 1, 2)
        assert case.bank_capacity in (None, 1, 2, 3)
        spec = case.storage_spec()
        assert spec is not None
        assert len(spec.banks) == case.bank_count


def test_case_round_trips_storage_params():
    rng = random.Random(5)
    case = draw_bank_case(rng, 0)
    rebuilt = FuzzCase(**case.to_dict())
    assert rebuilt == case
    assert rebuilt.storage_spec() == case.storage_spec()


def test_banked_cases_replay_independently():
    report = run_fuzz(seed=19, iters=6, family="banked", use_lp=False)
    rng = spawn_rng(19, "fuzz-plan")
    statuses = {"ok": 0, "infeasible": 0, "violation": 0}
    for index in range(6):
        case = draw_bank_case(rng, index)
        statuses[run_case(19, case, use_lp=False).status] += 1
    assert statuses == report["statuses"]


def test_shrinker_keeps_storage_when_failure_needs_it(monkeypatch):
    # A fault that only manifests under a storage hierarchy: the
    # shrinker must not drop the spec, but may shed redundant banks.
    import repro.verify.fuzz as fuzz_mod
    from repro.core.problem import AllocationProblem
    from repro.core.storage import StorageSpec
    from repro.verify.oracles import Violation
    from tests.conftest import make_lifetime

    def storage_sensitive(problem, use_lp=None):
        if problem.storage is None:
            return "ok", []
        return "violation", [Violation(oracle="fake", message="boom")]

    monkeypatch.setattr(fuzz_mod, "run_problem", storage_sensitive)
    problem = AllocationProblem(
        {"a": make_lifetime("a", 1, 4), "b": make_lifetime("b", 2, 5)},
        register_count=1,
        horizon=6,
        storage=StorageSpec.banked(3, 2),
    )
    shrunk = shrink_case(problem, use_lp=False)
    assert shrunk.storage is not None
    assert len(shrunk.storage.banks) == 1  # redundant banks shed


def test_shrinker_drops_unneeded_storage(monkeypatch):
    import repro.verify.fuzz as fuzz_mod
    from repro.core.problem import AllocationProblem
    from repro.core.storage import StorageSpec
    from repro.verify.oracles import Violation
    from tests.conftest import make_lifetime

    def always_fails(problem, use_lp=None):
        return "violation", [Violation(oracle="fake", message="boom")]

    monkeypatch.setattr(fuzz_mod, "run_problem", always_fails)
    problem = AllocationProblem(
        {"a": make_lifetime("a", 1, 4)},
        register_count=1,
        horizon=5,
        storage=StorageSpec.banked(2, 2),
    )
    shrunk = shrink_case(problem, use_lp=False)
    assert shrunk.storage is None
