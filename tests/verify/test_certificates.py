"""Tests for optimality-certificate construction and verification.

The acceptance-critical property lives here: a hand-perturbed suboptimal
flow must be *provably* rejected by the certificate machinery itself (a
negative residual cycle / failed complementary slackness), not merely by
comparing objective values.
"""

import random

import pytest

from repro.core.network_builder import SINK, SOURCE
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.flow import FlowNetwork, solve_min_cost_flow
from repro.flow.graph import FlowResult
from repro.verify.certificates import (
    CertificateError,
    certify_flow,
    certify_optimal,
    check_certificate,
    compute_potentials,
)
from repro.workloads.random_blocks import random_lifetimes


def diamond():
    """Two parallel s->t paths: cheap (cost 1) and expensive (cost 5)."""
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=1.0)
    net.add_arc("a", "t", capacity=1, cost=0.0)
    net.add_arc("s", "b", capacity=1, cost=5.0)
    net.add_arc("b", "t", capacity=1, cost=0.0)
    return net


def test_optimal_flow_certifies():
    net = diamond()
    result = solve_min_cost_flow(net, "s", "t", 1)
    potentials = certify_flow(result)
    # The witness is reusable: arithmetic-only re-verification passes.
    check_certificate(net, result.flows, potentials)


def test_hand_perturbed_flow_rejected():
    net = diamond()
    # Feasible but suboptimal: route the unit via the expensive path.
    bad = [0, 0, 1, 1]
    with pytest.raises(CertificateError, match="residual cycle"):
        compute_potentials(net, bad)
    with pytest.raises(CertificateError):
        certify_optimal(net, bad)


def test_perturbed_allocation_flow_rejected():
    # The same property on a real allocation network: rerouting one unit
    # around a residual cycle yields a feasible flow of the same value
    # and the certificate names the cycle that proves it suboptimal.
    lifetimes = random_lifetimes(random.Random(3), count=8, horizon=10)
    problem = AllocationProblem(
        lifetimes,
        register_count=3,
        horizon=max(l.end for l in lifetimes.values()),
    )
    allocation = allocate(problem)
    certify_flow(allocation.flow)

    net = allocation.flow.network
    # Build the worst feasible flow of the same value by negating costs.
    negated = FlowNetwork()
    for node in net.nodes:
        negated.add_node(node)
    for arc in net.arcs:
        negated.add_arc(
            arc.tail,
            arc.head,
            capacity=arc.capacity,
            cost=-arc.cost,
            lower=arc.lower,
        )
    worst = solve_min_cost_flow(
        negated, SOURCE, SINK, problem.register_count
    )
    perturbed = FlowResult(
        net, list(worst.flows), problem.register_count
    )
    assert perturbed.cost > allocation.flow.cost
    with pytest.raises(CertificateError, match="residual cycle"):
        certify_flow(perturbed)


def test_bogus_potentials_rejected():
    net = diamond()
    result = solve_min_cost_flow(net, "s", "t", 1)
    good = compute_potentials(net, result.flows)
    bad = dict(good)
    bad["a"] = bad["a"] + 100.0
    with pytest.raises(CertificateError, match="slackness"):
        check_certificate(net, result.flows, bad)


def test_missing_node_rejected():
    net = diamond()
    result = solve_min_cost_flow(net, "s", "t", 1)
    potentials = compute_potentials(net, result.flows)
    del potentials["b"]
    with pytest.raises(CertificateError, match="misses node"):
        check_certificate(net, result.flows, potentials)


def test_lower_bounded_arcs_respected():
    # flow > lower admits a backward residual arc; flow == lower does not.
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0, lower=1)
    net.add_arc("a", "t", capacity=2, cost=0.0, lower=1)
    net.add_arc("s", "t", capacity=2, cost=0.0)
    # One forced unit through a, one via the free bypass: optimal.
    certify_optimal(net, [1, 1, 1])
    # Two units through the costly path when the bypass is free: not.
    with pytest.raises(CertificateError):
        certify_optimal(net, [2, 2, 0])


def test_certificate_on_zero_flow():
    net = diamond()
    result = solve_min_cost_flow(net, "s", "t", 0)
    certify_flow(result)


def test_random_allocations_all_certify():
    rng = random.Random(0xA11C)
    for _ in range(10):
        lifetimes = random_lifetimes(
            rng, count=rng.randint(2, 10), horizon=rng.randint(4, 12)
        )
        problem = AllocationProblem(
            lifetimes,
            register_count=rng.randint(0, len(lifetimes)),
            horizon=max(l.end for l in lifetimes.values()),
        )
        certify_flow(allocate(problem).flow)


def test_allocate_certify_flag():
    from repro.obs import trace as obs

    lifetimes = random_lifetimes(random.Random(12), count=6, horizon=8)
    problem = AllocationProblem(
        lifetimes,
        register_count=2,
        horizon=max(l.end for l in lifetimes.values()),
    )
    with obs.collect() as trace:
        allocation = allocate(problem, certify=True)
    assert allocation.objective == allocate(problem).objective
    assert trace.find("solver.certify") is not None
