"""Tests for the differential verification subsystem."""
