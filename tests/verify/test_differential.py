"""Tests for multi-solver cross-checking and baseline dominance."""

import random

from repro.core.network_builder import SINK, SOURCE, build_network
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig
from repro.flow import FlowNetwork
from repro.verify.differential import (
    baseline_dominance,
    cross_check,
    run_baselines,
)
from repro.workloads.random_blocks import random_lifetimes


def instance(seed=5, count=9, horizon=11, registers=3, divisor=1):
    lifetimes = random_lifetimes(
        random.Random(seed), count=count, horizon=horizon
    )
    return AllocationProblem(
        lifetimes,
        register_count=registers,
        horizon=max(l.end for l in lifetimes.values()),
        memory=MemoryConfig(divisor=divisor),
    )


def test_solvers_agree_plain_network():
    problem = instance()
    built = build_network(problem)
    outcome = cross_check(
        built.network, SOURCE, SINK, problem.register_count
    )
    assert outcome.agreed, outcome.message
    assert set(outcome.costs) >= {"ssp", "cycle_canceling"}
    assert outcome.spread <= 1e-6 * (
        1 + max(abs(c) for c in outcome.costs.values())
    )


def test_solvers_agree_with_lower_bounds():
    problem = instance(seed=8, registers=5, divisor=2)
    built = build_network(problem)
    assert built.network.has_lower_bounds()
    outcome = cross_check(
        built.network, SOURCE, SINK, problem.register_count
    )
    assert outcome.agreed, outcome.message
    assert "cycle_canceling" in outcome.costs


def test_lp_can_be_skipped():
    problem = instance()
    built = build_network(problem)
    outcome = cross_check(
        built.network, SOURCE, SINK, problem.register_count, use_lp=False
    )
    assert outcome.skipped == ["lp"]
    assert "lp" not in outcome.costs
    assert outcome.agreed


def test_unanimous_infeasibility_agrees():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=1)
    outcome = cross_check(net, "s", "t", 5)
    assert outcome.agreed
    assert not outcome.costs
    assert set(outcome.infeasible) >= {"ssp", "cycle_canceling"}


def test_outcome_serialises():
    problem = instance()
    built = build_network(problem)
    outcome = cross_check(
        built.network, SOURCE, SINK, problem.register_count
    )
    data = outcome.to_dict()
    assert data["agreed"] is True
    assert set(data) == {
        "costs",
        "infeasible",
        "skipped",
        "agreed",
        "spread",
        "message",
    }


def test_dominance_over_all_baselines():
    for seed in (1, 2, 3):
        problem = instance(seed=seed, registers=4)
        outcome = baseline_dominance(allocate(problem))
        assert outcome.dominated, outcome.message
        ran = set(outcome.baselines) | set(outcome.skipped)
        assert ran == {
            "two-phase",
            "left-edge",
            "graph-coloring",
            "greedy",
            "chang-pedram",
        }


def test_chang_pedram_runs_above_density():
    problem = instance(seed=6, registers=9, count=9)
    if problem.register_count < problem.max_density:
        problem = problem.with_options(
            register_count=problem.max_density
        )
    outcome = baseline_dominance(allocate(problem))
    assert "chang-pedram" in outcome.baselines
    assert outcome.dominated, outcome.message


def test_run_baselines_skips_chang_pedram_below_density():
    problem = instance(seed=7, registers=1, count=10)
    objectives, skipped = run_baselines(
        problem.lifetimes,
        problem.horizon,
        problem.register_count,
        problem.energy_model,
    )
    if problem.max_density > 1:
        assert skipped == ["chang-pedram"]
    assert set(objectives) >= {"two-phase", "left-edge"}
