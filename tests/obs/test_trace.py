"""Tracing core: span nesting, disabled fast path, thread safety."""

from __future__ import annotations

import threading
import tracemalloc

from repro.obs import trace as obs


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with obs.collect() as trace:
            with obs.span("outer"):
                with obs.span("inner_a"):
                    pass
                with obs.span("inner_b"):
                    pass
        roots = trace.roots
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == [
            "inner_a",
            "inner_b",
        ]
        assert roots[0].children[0].children == []

    def test_sequential_spans_become_sibling_roots(self):
        with obs.collect() as trace:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [root.name for root in trace.roots] == ["first", "second"]

    def test_parent_duration_covers_children(self):
        with obs.collect() as trace:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(1000))
        outer = trace.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert outer.start <= inner.start and inner.end <= outer.end

    def test_find_and_walk(self):
        with obs.collect() as trace:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
        assert trace.find("c").name == "c"
        assert trace.find("missing") is None
        depths = {name: depth for depth, node in trace.roots[0].walk()
                  for name in [node.name]}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_span_survives_exceptions(self):
        with obs.collect() as trace:
            try:
                with obs.span("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
        root = trace.roots[0]
        assert root.name == "boom"
        assert root.end >= root.start


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None

    def test_noop_span_is_a_shared_singleton(self):
        # The zero-allocation guarantee: span() returns the same pre-built
        # object every time while tracing is disabled.
        assert obs.span("a") is obs.span("b")
        with obs.span("ignored"):
            obs.count("ignored")
            obs.gauge("ignored", 1)

    def test_noop_path_allocates_nothing(self):
        for _ in range(10):  # warm up caches and the tracemalloc machinery
            with obs.span("warmup"):
                obs.count("warmup")
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(1000):
                with obs.span("hot"):
                    obs.count("hot")
                    obs.gauge("hot", 1)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 512  # no per-call retained allocations

    def test_counts_outside_collect_are_dropped(self):
        obs.count("dropped", 5)
        with obs.collect() as trace:
            pass
        assert trace.counters == {}


class TestRegistry:
    def test_collect_restores_previous_collector(self):
        with obs.collect() as outer:
            obs.count("shared")
            with obs.collect() as inner:
                obs.count("shared")
            obs.count("shared")
        assert inner.counter("shared") == 1
        assert outer.counter("shared") == 2
        assert not obs.enabled()

    def test_install_uninstall(self):
        collector = obs.TraceCollector()
        obs.install(collector)
        try:
            assert obs.enabled()
            assert obs.current() is collector
            obs.count("manual", 3)
        finally:
            obs.uninstall()
        assert collector.counter("manual") == 3
        assert not obs.enabled()


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        with obs.collect() as trace:
            obs.count("hits")
            obs.count("hits", 4)
            obs.count("misses", 0)
        assert trace.counters == {"hits": 5, "misses": 0}
        assert trace.counter("hits") == 5
        assert trace.counter("absent", -1) == -1

    def test_gauges_last_write_wins(self):
        with obs.collect() as trace:
            obs.gauge("depth", 1)
            obs.gauge("depth", 7)
        assert trace.gauges == {"depth": 7}

    def test_thread_safety(self):
        threads = 4
        increments = 500

        def worker(trace):
            for _ in range(increments):
                trace.add("shared")
            with trace.span("worker"):
                pass

        with obs.collect() as trace:
            pool = [
                threading.Thread(target=worker, args=(trace,))
                for _ in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        assert trace.counter("shared") == threads * increments
        # Each thread's top-level span lands as its own root.
        assert sum(r.name == "worker" for r in trace.roots) == threads
