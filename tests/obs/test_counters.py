"""Counter accuracy of the instrumented solvers and builders.

The headline check hand-builds the flow network of a four-variable
allocation — four disjoint ``s -> w(v) -> r(v) -> t`` unit-capacity paths —
where the successive-shortest-path solver must augment *exactly once per
variable*, so the expected counter values are known in closed form.
"""

from __future__ import annotations

import pytest

from repro.core.network_builder import build_network
from repro.core.pipeline import allocate_block
from repro.core.problem import AllocationProblem
from repro.energy import StaticEnergyModel
from repro.flow.cycle_canceling import solve_by_cycle_canceling
from repro.flow.graph import FlowNetwork
from repro.flow.ssp import solve_min_cost_flow
from repro.obs import trace as obs
from repro.workloads import fir_filter

from tests.conftest import make_lifetime


def four_variable_network() -> FlowNetwork:
    """Four parallel unit paths s -> w(v) -> r(v) -> t, one per variable."""
    network = FlowNetwork()
    for i, name in enumerate("abcd"):
        network.add_arc("s", ("w", name), capacity=1, cost=float(i))
        network.add_arc(("w", name), ("r", name), capacity=1, cost=1.0)
        network.add_arc(("r", name), "t", capacity=1, cost=0.0)
    return network


class TestSspCounters:
    def test_exact_augmenting_path_count(self):
        with obs.collect() as trace:
            result = solve_min_cost_flow(four_variable_network(), "s", "t", 4)
        assert result.value == 4
        counters = trace.counters
        # Unit capacities force one augmenting path per shipped unit.
        assert counters["ssp.augmenting_paths"] == 4
        assert counters["ssp.solves"] == 1
        # Every Dijkstra round settles at least the path's own nodes.
        assert counters["ssp.dijkstra_pops"] >= counters["ssp.augmenting_paths"]
        assert counters["ssp.dijkstra_relaxations"] > 0
        assert counters["ssp.potential_updates"] > 0

    def test_counters_are_deterministic(self):
        def run() -> dict:
            with obs.collect() as trace:
                solve_min_cost_flow(four_variable_network(), "s", "t", 4)
            return trace.counters

        assert run() == run()

    def test_partial_flow_counts_fewer_paths(self):
        with obs.collect() as trace:
            solve_min_cost_flow(four_variable_network(), "s", "t", 2)
        assert trace.counter("ssp.augmenting_paths") == 2

    def test_zero_flow_skips_the_solver(self):
        with obs.collect() as trace:
            solve_min_cost_flow(four_variable_network(), "s", "t", 0)
        assert trace.counters == {}


class TestCycleCancelingCounters:
    def test_optimal_establishment_cancels_nothing(self):
        # Disjoint unit paths: the cost-blind BFS flow is already optimal.
        with obs.collect() as trace:
            solve_by_cycle_canceling(four_variable_network(), "s", "t", 4)
        counters = trace.counters
        assert counters["cycle_canceling.solves"] == 1
        assert counters["cycle_canceling.augmentations"] == 4
        assert counters["cycle_canceling.cycles_canceled"] == 0
        assert counters["cycle_canceling.bellman_ford_passes"] >= 1

    def test_suboptimal_establishment_cancels_cycles(self):
        # Two parallel s->t routes with very different costs; BFS may pick
        # either, but a middle "swap" arc guarantees at least one instance
        # where cancelling fires: cheap route capacity 1, expensive huge.
        network = FlowNetwork()
        network.add_arc("s", "a", capacity=2, cost=0.0)
        network.add_arc("a", "t", capacity=1, cost=0.0)
        network.add_arc("a", "b", capacity=2, cost=10.0)
        network.add_arc("s", "b", capacity=2, cost=0.0)
        network.add_arc("b", "t", capacity=2, cost=0.0)
        with obs.collect() as trace:
            result = solve_by_cycle_canceling(network, "s", "t", 2)
        # Optimal cost avoids the 10.0 arc entirely.
        assert result.cost == pytest.approx(0.0)
        assert trace.counter("cycle_canceling.augmentations") >= 1


class TestNetworkBuilderCounters:
    def problem(self) -> AllocationProblem:
        lifetimes = {
            "a": make_lifetime("a", 0, 3),
            "b": make_lifetime("b", 1, 4),
            "c": make_lifetime("c", 2, 6),
            "d": make_lifetime("d", 5, 7),
        }
        return AllocationProblem(
            lifetimes, 2, 8, energy_model=StaticEnergyModel()
        )

    def test_counts_match_the_built_network(self):
        with obs.collect() as trace:
            built = build_network(self.problem())
        counters = trace.counters
        assert counters["network.builds"] == 1
        assert counters["network.nodes_built"] == built.network.num_nodes
        assert counters["network.arcs_built"] == built.network.num_arcs
        regions = trace.gauges["network.density_regions"]
        assert regions == len(built.problem.density_regions)

    def test_counts_accumulate_across_builds(self):
        problem = self.problem()
        with obs.collect() as trace:
            build_network(problem)
            build_network(problem)
        assert trace.counter("network.builds") == 2


class TestPipelineSpans:
    def test_full_pipeline_emits_stage_spans(self):
        with obs.collect() as trace:
            allocate_block(fir_filter(5), register_count=3)
        names = [root.name for root in trace.roots]
        assert names[:3] == [
            "pipeline.schedule",
            "pipeline.build_problem",
            "pipeline.allocate",
        ]
        allocate_span = trace.find("pipeline.allocate")
        child_names = [child.name for child in allocate_span.children]
        assert child_names == [
            "solver.build_network",
            "solver.flow_solve",
            "solver.validate",
            "solver.extract",
        ]
        assert all(child.duration >= 0.0 for child in allocate_span.children)

    def test_solver_counters_reach_the_same_trace(self):
        with obs.collect() as trace:
            allocate_block(fir_filter(5), register_count=3)
        counters = trace.counters
        assert counters["ssp.augmenting_paths"] > 0
        assert counters["ssp.dijkstra_pops"] > 0
        assert counters["network.arcs_built"] > 0
