"""Exporters: dict/JSON round-trip, CSV shape, human-readable table."""

from __future__ import annotations

import json

from repro.obs import trace as obs
from repro.obs.export import (
    flatten_spans,
    format_trace,
    trace_to_csv,
    trace_to_dict,
    trace_to_json,
)


def sample_trace() -> obs.TraceCollector:
    with obs.collect() as trace:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.count("widgets", 3)
        obs.gauge("depth", 2)
    return trace


def test_dict_shape():
    data = trace_to_dict(sample_trace())
    assert set(data) == {"spans", "counters", "gauges"}
    assert data["counters"] == {"widgets": 3}
    assert data["gauges"] == {"depth": 2}
    (outer,) = data["spans"]
    assert outer["name"] == "outer"
    assert outer["children"][0]["name"] == "inner"
    assert outer["duration_s"] >= outer["children"][0]["duration_s"]


def test_json_round_trip():
    trace = sample_trace()
    assert json.loads(trace_to_json(trace)) == trace_to_dict(trace)


def test_flatten_spans_paths():
    paths = [path for path, _ in flatten_spans(sample_trace())]
    assert paths == ["outer", "outer/inner"]


def test_csv_rows():
    lines = trace_to_csv(sample_trace()).splitlines()
    assert lines[0] == "kind,name,value"
    kinds = {line.split(",")[0] for line in lines[1:]}
    assert kinds == {"span", "counter", "gauge"}
    assert any(line.startswith("span,outer/inner,") for line in lines)
    assert "counter,widgets,3" in lines


def test_format_trace_mentions_everything():
    text = format_trace(sample_trace())
    for token in ("outer", "inner", "widgets", "depth", "ms"):
        assert token in text


def test_format_empty_trace():
    with obs.collect() as trace:
        pass
    assert format_trace(trace) == "(empty trace)"
