"""Run reports: schema, JSON round-trip, CSV/table rendering, overhead."""

from __future__ import annotations

import json
import random
import time

from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import StaticEnergyModel
from repro.obs import trace as obs
from repro.obs.profile import (
    SCHEMA,
    build_report,
    format_report,
    profile_block,
    report_to_csv,
    report_to_json,
)
from repro.workloads import fir_filter
from repro.workloads.random_blocks import random_lifetimes


def test_profile_block_report_schema():
    report = profile_block(
        fir_filter(5),
        register_count=3,
        workload="fir",
        params={"taps": 5, "registers": 3},
    )
    assert report["schema"] == SCHEMA
    assert report["workload"] == "fir"
    assert report["params"] == {"taps": 5, "registers": 3}
    assert report["wall_time_s"] > 0.0
    # Per-stage wall times, flattened and nested.
    assert "pipeline.allocate" in report["stages"]
    assert "pipeline.allocate/solver.flow_solve" in report["stages"]
    assert all(d >= 0.0 for d in report["stages"].values())
    # Solver counters required by the acceptance criteria.
    counters = report["trace"]["counters"]
    assert counters["ssp.dijkstra_pops"] > 0
    assert counters["ssp.augmenting_paths"] > 0
    assert counters["network.arcs_built"] > 0
    # Allocation summary.
    allocation = report["allocation"]
    assert allocation["registers_used"] >= 1
    assert allocation["total_energy"] == allocation["objective"]


def test_report_json_round_trip():
    report = profile_block(fir_filter(4), register_count=2)
    assert json.loads(report_to_json(report)) == report


def test_report_csv_and_table():
    report = profile_block(fir_filter(4), register_count=2)
    csv_text = report_to_csv(report)
    assert csv_text.splitlines()[0] == "kind,name,value"
    assert "counter,ssp.augmenting_paths," in csv_text
    table = format_report(report)
    for token in ("run report", "pipeline.allocate", "ssp.dijkstra_pops"):
        assert token in table


def test_build_report_defaults_wall_time_to_root_sum():
    with obs.collect() as trace:
        with obs.span("only"):
            pass
    report = build_report(workload="w", trace=trace)
    assert report["wall_time_s"] == trace.roots[0].duration
    assert "allocation" not in report


def test_profiling_leaves_tracing_disabled():
    profile_block(fir_filter(3), register_count=2)
    assert not obs.enabled()


def test_disabled_tracing_overhead_is_negligible():
    """Instrumentation off must stay within noise of the solve itself.

    A coarse, non-flaky guard for the <2% target measured properly on the
    scaling bench: the per-call cost of the disabled obs API must be tiny
    relative to one small allocate() call.
    """
    lifetimes = random_lifetimes(random.Random(7), count=40, horizon=12)
    problem = AllocationProblem(
        lifetimes, 4, 12, energy_model=StaticEnergyModel()
    )
    start = time.perf_counter()
    allocate(problem, validate=False)
    solve_time = time.perf_counter() - start

    calls = 10_000
    start = time.perf_counter()
    for _ in range(calls):
        obs.count("x")
        with obs.span("y"):
            pass
    obs_time = time.perf_counter() - start
    # The whole pipeline makes a few dozen obs calls per solve; 10k calls
    # finishing in a fraction of one solve leaves the real overhead far
    # below the 2% budget.
    assert obs_time < max(solve_time, 0.005) * 5
