"""Tests for lowering partition plans onto the batch service."""

import json

import pytest

from repro.dag import (
    build_jobs,
    dispatch_blocks,
    emit_manifest,
    partition_graph,
    sweep_operating_points,
)
from repro.service.executor import BatchExecutor
from repro.service.manifest import SCHEMA_V2, load_manifest
from repro.workloads.registry import dag_workload


def pipeline(name="diamond", cores=2, registers=4):
    plan = partition_graph(dag_workload(name), cores=cores)
    selection = sweep_operating_points(plan, register_count=registers)
    jobs = build_jobs(plan, selection, register_count=registers)
    return plan, selection, jobs


def test_one_job_per_task_at_the_assigned_point():
    plan, selection, jobs = pipeline()
    assert sorted(j.task for j in jobs) == sorted(
        t.name for t in plan.graph.tasks
    )
    for job in jobs:
        point = selection.assignment[job.partition]
        assert job.point == point
        assert job.job_id == f"{job.partition}:{job.task}"
        assert job.problem.memory.voltage == point.voltage
        assert job.problem.memory.divisor == 1  # topology stays warm-startable
        assert job.problem.horizon == plan.schedules[job.task].length


def test_dispatch_objectives_reconcile_with_the_sweep():
    plan, selection, jobs = pipeline()
    results = dispatch_blocks(jobs, certify_fraction=1.0)
    assert [r.job_id for r in results] == [j.job_id for j in jobs]
    for job, result in zip(jobs, results):
        assert result.status == "ok"
        assert result.certified
        rate = plan.graph.task(job.task).rate
        assert result.objective * rate == pytest.approx(
            selection.block_energies[job.task]
        )


def test_dispatch_reuses_a_caller_supplied_executor():
    _, _, jobs = pipeline()
    executor = BatchExecutor(certify_fraction=1.0)
    first = dispatch_blocks(jobs, executor=executor)
    second = dispatch_blocks(jobs, executor=executor)
    assert all(r.status == "ok" for r in first)
    # identical instances: nothing to solve the second time around
    assert all(not r.cached for r in first)


def test_emitted_manifest_replays_through_the_service(tmp_path):
    plan, selection, jobs = pipeline()
    manifest_path = emit_manifest(jobs, tmp_path, graph_name="diamond")
    assert manifest_path.name == "diamond.manifest.json"

    document = json.loads(manifest_path.read_text())
    assert document["schema"] == SCHEMA_V2
    assert len(document["jobs"]) == len(jobs)
    assert all(entry["kind"] == "instance" for entry in document["jobs"])

    manifest = load_manifest(manifest_path)
    built = manifest.build()
    assert [w.label for w in built] == [j.job_id for j in jobs]
    # The instance files embed the full DVFS operating point: replaying
    # the manifest must produce byte-identical problems.
    for job, workload in zip(jobs, built):
        assert workload.problem.memory == job.problem.memory
        assert workload.problem.register_count == job.problem.register_count
        assert workload.problem.lifetimes == job.problem.lifetimes

    executor = BatchExecutor()
    for workload in built:
        executor.submit(workload.problem, job_id=workload.label)
    replayed = executor.gather()
    direct = dispatch_blocks(jobs)
    for a, b in zip(replayed, direct):
        assert a.status == "ok"
        assert a.objective == pytest.approx(b.objective)


def test_missing_partition_in_selection_is_a_dag_error():
    from repro.exceptions import DagError

    plan, selection, _ = pipeline()
    broken = type(selection)(
        assignment={},
        partition_energies=selection.partition_energies,
        block_energies=selection.block_energies,
        handoff_energy=selection.handoff_energy,
        total_energy=selection.total_energy,
        makespan=selection.makespan,
        frontier=selection.frontier,
    )
    with pytest.raises(DagError):
        build_jobs(plan, broken)
