"""Tests for deadline-constrained task-graph partitioning."""

import pytest

from repro.dag import partition_graph, plan_handoffs
from repro.energy import StaticEnergyModel
from repro.exceptions import DagError
from repro.ir.task_graph import Task, TaskGraph
from repro.workloads import fir_filter
from repro.workloads.registry import dag_workload


def single_task_graph() -> TaskGraph:
    graph = TaskGraph("solo")
    graph.add_task(Task("only", fir_filter(4)))
    return graph


def test_every_task_in_exactly_one_partition():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    owners = [t for p in plan.partitions for t in p.tasks]
    assert sorted(owners) == sorted(t.name for t in plan.graph.tasks)


def test_partition_ids_follow_core_era_convention():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    for partition in plan.partitions:
        assert partition.id == f"core{partition.core}/era{partition.era}"


def test_core_sequences_are_topological_subsequences():
    plan = partition_graph(dag_workload("fanin"), cores=3)
    order = plan.graph.topological_order()
    index = {task.name: i for i, task in enumerate(order)}
    by_core: dict[int, list[str]] = {}
    for partition in plan.partitions:
        by_core.setdefault(partition.core, []).extend(partition.tasks)
    for sequence in by_core.values():
        positions = [index[name] for name in sequence]
        assert positions == sorted(positions)


def test_nominal_makespan_matches_slowdown_free_simulation():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    assert plan.makespan() == pytest.approx(plan.nominal_makespan)
    assert plan.nominal_makespan <= plan.deadline


def test_uniform_slowdown_scales_the_single_core_makespan():
    plan = partition_graph(single_task_graph(), cores=1)
    slowed = plan.makespan({p.id: 2.0 for p in plan.partitions})
    assert slowed == pytest.approx(2.0 * plan.nominal_makespan)


def test_deadline_below_nominal_is_rejected():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    with pytest.raises(DagError):
        partition_graph(
            dag_workload("diamond"),
            cores=2,
            deadline=plan.nominal_makespan * 0.5,
        )


def test_bad_parameters_are_rejected():
    with pytest.raises(DagError):
        partition_graph(dag_workload("diamond"), cores=0)
    with pytest.raises(DagError):
        partition_graph(dag_workload("diamond"), slack=0.5)
    with pytest.raises(DagError):
        partition_graph(TaskGraph("empty"))


def test_parallelism_survives_refinement():
    # The diamond's two middle tasks are independent; with 2 cores the
    # refinement pass must not serialise them just to kill the handoffs
    # (the makespan-no-increase rule).
    plan = partition_graph(dag_workload("diamond"), cores=2)
    cores_used = {p.core for p in plan.partitions}
    assert len(cores_used) == 2
    assert plan.nominal_makespan < sum(plan.runtimes.values())


def test_handoffs_cover_exactly_the_cut_edges():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    handoffs = plan_handoffs(plan)
    assert tuple(h.edge for h in handoffs) == plan.cut_edges()
    for handoff in handoffs:
        assert handoff.from_partition != handoff.to_partition
        assert handoff.energy > 0
        assert handoff.variables


def test_handoff_energy_is_write_plus_rate_weighted_read():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    model = StaticEnergyModel()
    for handoff in plan_handoffs(plan, energy_model=model):
        producer = plan.graph.task(handoff.edge[0])
        consumer = plan.graph.task(handoff.edge[1])
        expected = sum(
            model.mem_write(producer.block.variable(name)) * producer.rate
            + model.mem_read(producer.block.variable(name)) * consumer.rate
            for name in producer.block.live_out
        )
        assert handoff.energy == pytest.approx(expected)


def test_single_core_serialises_everything():
    plan = partition_graph(dag_workload("fanin"), cores=1)
    assert all(p.core == 0 for p in plan.partitions)
    assert plan.nominal_makespan == pytest.approx(sum(plan.runtimes.values()))


def test_partition_of_unknown_task_raises():
    plan = partition_graph(single_task_graph(), cores=1)
    with pytest.raises(DagError):
        plan.partition_of("ghost")
