"""Tests for the task-graph partitioning + DVFS subsystem."""
