"""Tests for DAG report assembly and the reconciliation oracle."""

import copy
import json

import pytest

from repro.dag import (
    DAG_REPORT_SCHEMA,
    build_dag_report,
    build_jobs,
    dispatch_blocks,
    partition_graph,
    plan_handoffs,
    render_dag_text,
    report_to_json,
    sweep_operating_points,
)
from repro.verify import OracleViolation, oracle_dag_reconciliation
from repro.workloads.registry import dag_workload


@pytest.fixture(scope="module")
def report():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    handoffs = plan_handoffs(plan)
    selection = sweep_operating_points(
        plan,
        register_count=4,
        handoff_energy=sum(h.energy for h in handoffs),
    )
    jobs = build_jobs(plan, selection, register_count=4)
    results = dispatch_blocks(jobs, certify_fraction=1.0)
    return build_dag_report(
        plan, selection, handoffs, results, register_count=4
    )


def test_report_schema_and_shape(report):
    assert report["schema"] == DAG_REPORT_SCHEMA
    assert report["graph"] == "diamond"
    assert report["tasks"] == 4
    assert report["register_count"] == 4
    assert {b["task"] for b in report["blocks"]} == {
        "front", "left", "right", "back",
    }
    for block in report["blocks"]:
        assert block["job"]["status"] == "ok"
        assert block["job"]["certified"]
    assert report["energy"]["total"] == pytest.approx(
        report["energy"]["blocks"] + report["energy"]["handoffs"]
    )


def test_report_round_trips_through_json(report):
    decoded = json.loads(report_to_json(report))
    assert decoded == report
    oracle_dag_reconciliation(decoded, require_certified=True)


def test_oracle_accepts_the_genuine_report(report):
    oracle_dag_reconciliation(report, require_certified=True)


def test_oracle_catches_tampered_total(report):
    bad = copy.deepcopy(report)
    bad["energy"]["total"] += 1.0
    with pytest.raises(OracleViolation, match="energy.total"):
        oracle_dag_reconciliation(bad)


def test_oracle_catches_tampered_partition_energy(report):
    bad = copy.deepcopy(report)
    bad["partitions"][0]["energy"] += 0.5
    with pytest.raises(OracleViolation, match="sum of"):
        oracle_dag_reconciliation(bad)


def test_oracle_catches_block_job_disagreement(report):
    bad = copy.deepcopy(report)
    bad["blocks"][0]["job"]["objective"] *= 2
    with pytest.raises(OracleViolation, match="objective"):
        oracle_dag_reconciliation(bad)


def test_oracle_catches_failed_jobs(report):
    bad = copy.deepcopy(report)
    bad["blocks"][0]["job"]["status"] = "failed"
    with pytest.raises(OracleViolation, match="status"):
        oracle_dag_reconciliation(bad)


def test_oracle_enforces_certificates_on_request(report):
    bad = copy.deepcopy(report)
    bad["blocks"][0]["job"]["certified"] = False
    oracle_dag_reconciliation(bad)  # fine without the flag
    with pytest.raises(OracleViolation, match="certificate"):
        oracle_dag_reconciliation(bad, require_certified=True)


def test_oracle_catches_missed_deadline(report):
    bad = copy.deepcopy(report)
    bad["makespan"] = bad["deadline"] + 1.0
    with pytest.raises(OracleViolation, match="deadline"):
        oracle_dag_reconciliation(bad)


def test_oracle_catches_lying_frontier_flags(report):
    bad = copy.deepcopy(report)
    bad["frontier"][0]["meets_deadline"] = not bad["frontier"][0][
        "meets_deadline"
    ]
    with pytest.raises(OracleViolation, match="frontier"):
        oracle_dag_reconciliation(bad)


def test_oracle_rejects_unknown_schema(report):
    bad = copy.deepcopy(report)
    bad["schema"] = "repro.dag/report/v999"
    with pytest.raises(OracleViolation, match="schema"):
        oracle_dag_reconciliation(bad)


def test_text_rendering_mentions_the_headlines(report):
    text = render_dag_text(report)
    assert "diamond" in text
    assert "core0/era0" in text
    assert "frontier" in text
    assert "handoffs" in text
    assert "per frame" in text
