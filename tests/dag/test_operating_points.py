"""Tests for the per-partition DVFS co-optimiser."""

import pytest

from repro.dag import (
    DELAY_SLACK,
    OperatingPoint,
    default_ladder,
    partition_graph,
    plan_handoffs,
    sweep_operating_points,
)
from repro.energy.voltage import NOMINAL_VOLTAGE, cmos_delay_factor
from repro.exceptions import DagError
from repro.ir.task_graph import Task, TaskGraph
from repro.obs import trace as obs
from repro.workloads import fir_filter
from repro.workloads.registry import dag_workload


def single_task_plan():
    graph = TaskGraph("solo")
    graph.add_task(Task("only", fir_filter(4)))
    return partition_graph(graph, cores=1, slack=4.0)


def test_delay_slack_matches_the_lint_rule():
    # The sweep's feasibility check and lint RA403 must agree, or an
    # operating point the co-optimiser picks could be flagged by lint.
    from repro.lint.rules_energy import _DELAY_SLACK

    assert DELAY_SLACK == _DELAY_SLACK


def test_default_ladder_points_are_feasible_and_monotone():
    ladder = default_ladder()
    assert ladder[0].slowdown == 1.0
    assert ladder[0].voltage == NOMINAL_VOLTAGE
    voltages = [point.voltage for point in ladder]
    assert voltages == sorted(voltages, reverse=True)
    for point in ladder:
        assert point.feasible
        assert cmos_delay_factor(point.voltage) <= point.slowdown * (
            1.0 + DELAY_SLACK
        )


def test_sub_unity_slowdown_rejected():
    with pytest.raises(DagError):
        OperatingPoint(slowdown=0.5, voltage=5.0)


def test_infeasible_ladder_point_rejected():
    plan = single_task_plan()
    bad = OperatingPoint(slowdown=1.0, voltage=2.0)  # far too slow at 2 V
    assert not bad.feasible
    with pytest.raises(DagError):
        sweep_operating_points(plan, ladder=(bad,))


def test_empty_ladder_rejected():
    with pytest.raises(DagError):
        sweep_operating_points(single_task_plan(), ladder=())


def test_sweep_warm_starts_after_one_cold_solve():
    # Acceptance criterion: over a fixed single-task partition the sweep
    # does exactly one cold solve; every other ladder rung re-solves
    # incrementally (voltage is a cost-only perturbation).
    plan = single_task_plan()
    ladder = default_ladder()
    with obs.collect() as trace:
        warm = sweep_operating_points(plan, ladder=ladder)
    counters = trace.counters
    assert counters["solver.warm_start.cold"] == 1
    assert counters["solver.warm_start.incremental"] == len(ladder) - 1
    assert counters["dag.dvfs_sweep.solves"] == len(ladder)

    cold = sweep_operating_points(plan, ladder=ladder, warm_start=False)
    assert warm.total_energy == pytest.approx(cold.total_energy)
    assert warm.block_energies == pytest.approx(cold.block_energies)
    for point in zip(warm.frontier, cold.frontier):
        assert point[0].energy == pytest.approx(point[1].energy)


def test_selection_meets_deadline_and_reconciles():
    plan = partition_graph(dag_workload("diamond"), cores=2)
    handoffs = plan_handoffs(plan)
    handoff_energy = sum(h.energy for h in handoffs)
    selection = sweep_operating_points(
        plan, register_count=4, handoff_energy=handoff_energy
    )
    assert selection.makespan <= plan.deadline
    assert selection.total_energy == pytest.approx(
        sum(selection.partition_energies.values()) + handoff_energy
    )
    assert sum(selection.block_energies.values()) == pytest.approx(
        sum(selection.partition_energies.values())
    )
    assert set(selection.assignment) == {p.id for p in plan.partitions}


def test_slack_buys_voltage_scaling():
    # With real deadline headroom the co-optimiser must find something
    # cheaper than running everything at nominal.
    plan = partition_graph(dag_workload("diamond"), cores=2, slack=1.5)
    selection = sweep_operating_points(plan, register_count=4)
    nominal = next(
        f for f in selection.frontier if f.label == "uniform:1x"
    )
    assert selection.total_energy < nominal.energy
    assert any(
        point.slowdown > 1.0 for point in selection.assignment.values()
    )


def test_tight_deadline_still_harvests_idle_slack():
    # deadline == nominal makespan: the critical path cannot slow down,
    # but a partition with idle time (off the critical path) still can —
    # free energy the greedy pass must not leave on the table.
    plan = partition_graph(dag_workload("diamond"), cores=2, slack=1.0)
    selection = sweep_operating_points(plan, register_count=4)
    assert selection.makespan <= plan.deadline
    critical = max(plan.partitions, key=lambda p: p.work)
    assert selection.assignment[critical.id].slowdown == 1.0


def test_frontier_is_non_dominated_and_sorted():
    plan = partition_graph(dag_workload("fanin"), cores=2)
    selection = sweep_operating_points(plan, register_count=4)
    frontier = selection.frontier
    assert len(frontier) >= 2  # at least nominal + one scaled point
    makespans = [f.makespan for f in frontier]
    assert makespans == sorted(makespans)
    for i, a in enumerate(frontier):
        for b in frontier[i + 1 :]:
            # later points trade makespan for energy, never dominate
            assert b.energy < a.energy
        assert a.meets_deadline == (a.makespan <= plan.deadline)
