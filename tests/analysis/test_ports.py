"""Tests for port-usage analysis."""

import pytest

from repro.analysis.ports import port_usage, required_ports
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig, StaticEnergyModel
from tests.conftest import make_lifetime


def test_all_memory_counts_writes_and_reads():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 1, 4),
    }
    allocation = allocate(AllocationProblem(lifetimes, 0, 4))
    usage = port_usage(allocation)
    assert usage.mem_writes[1] == 2
    assert usage.mem_reads[3] == 1
    assert usage.mem_reads[4] == 1
    req = required_ports(allocation)
    assert req.mem_write_ports == 2
    assert req.mem_read_ports == 1
    assert req.mem_rw_ports == 2
    assert req.reg_rw_ports == 0


def test_register_side_counts():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 3, 5),
    }
    allocation = allocate(AllocationProblem(lifetimes, 1, 5))
    usage = port_usage(allocation)
    # a enters R0 at step 1, read at 3; b enters at step 3, read at 5.
    assert usage.reg_writes[1] == 1
    assert usage.reg_writes[3] == 1
    assert usage.reg_reads[3] == 1
    assert usage.reg_reads[5] == 1
    req = required_ports(allocation)
    assert req.reg_rw_ports == 2  # read of a + write of b at step 3


def test_block_end_reads_excluded():
    lifetimes = {"a": make_lifetime("a", 1, 6, live_out=True)}
    allocation = allocate(AllocationProblem(lifetimes, 0, 5))
    usage = port_usage(allocation)
    # The live-out read happens at step 6 = x+1: not an in-block port.
    assert sum(usage.mem_reads[1:6]) == 0
    assert required_ports(allocation).mem_read_ports == 0


def test_restricted_access_def_write_lands_on_access_step():
    # b written at 2 (off the access grid {1,3,5,7}); its forced head
    # segment rides a register, and if the optimum spills it, the write
    # must land on step 3.  A second variable occupies the peak so b
    # cannot simply stay registered for free.
    lifetimes = {
        "b": make_lifetime("b", 2, 7),
        "c": make_lifetime("c", 3, 5),
    }
    allocation = allocate(
        AllocationProblem(
            lifetimes, 1, 7,
            memory=MemoryConfig(divisor=2, voltage=3.3, offset=1),
        )
    )
    usage = port_usage(allocation)
    # No memory write may ever occur off the access grid.
    for step in (2, 4, 6):
        assert usage.mem_writes[step] == 0


def test_spill_and_reload_ports():
    # v in register for [1,3], spilled, reloaded at access cut.
    lifetimes = {
        "v": make_lifetime("v", 1, (3, 7)),
        "w": make_lifetime("w", 3, 5),
    }
    problem = AllocationProblem(
        lifetimes, 1, 7, energy_model=StaticEnergyModel()
    )
    allocation = allocate(problem)
    usage = port_usage(allocation)
    total_mem = sum(usage.mem_reads[1:8]) + sum(usage.mem_writes[1:8])
    assert total_mem == allocation.report.mem_accesses


def test_busiest_memory_step():
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 1, 4),
        "c": make_lifetime("c", 2, 5),
    }
    allocation = allocate(AllocationProblem(lifetimes, 0, 5))
    usage = port_usage(allocation)
    assert usage.busiest_memory_step() == 1  # two writes


def test_describe_memory():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    allocation = allocate(AllocationProblem(lifetimes, 0, 3))
    assert required_ports(allocation).describe_memory() == "1R + 1W"
