"""Cross-module consistency properties.

Three independent views of a solution must agree on random instances:

* the energy report (``compute_report``),
* the per-step port-usage schedule (``port_usage``),
* the MOA access sequence (``access_sequence``).

Any drift between the three indicates an accounting bug in one of them.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ports import port_usage
from repro.core import AllocationProblem, allocate
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.exceptions import InfeasibleFlowError
from repro.moa.access import access_sequence
from repro.workloads.random_blocks import random_lifetimes

HORIZON = 10


@st.composite
def solved_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    registers = draw(st.integers(min_value=0, max_value=4))
    divisor = draw(st.sampled_from((1, 1, 2, 3)))
    rng = random.Random(seed)
    lifetimes = random_lifetimes(
        rng, count=draw(st.integers(min_value=1, max_value=9)),
        horizon=HORIZON, multi_read_fraction=0.3,
    )
    problem = AllocationProblem(
        lifetimes,
        registers,
        HORIZON,
        energy_model=StaticEnergyModel(),
        memory=MemoryConfig(divisor=divisor, voltage=3.3),
    )
    try:
        return problem, allocate(problem, validate=True)
    except InfeasibleFlowError:
        return None


@given(solved_instances())
@settings(max_examples=60, deadline=None)
def test_port_usage_sums_match_report(instance):
    if instance is None:
        return
    problem, allocation = instance
    usage = port_usage(allocation)
    steps = range(1, problem.horizon + 1)
    block_end_reads = sum(
        1
        for name, segments in problem.segments.items()
        for seg in segments
        if seg.reads and seg.reads[-1] == problem.horizon + 1
        and seg.key not in allocation.residency
    )
    block_end_reg_reads = sum(
        1
        for name, segments in problem.segments.items()
        for seg in segments
        if seg.reads and seg.reads[-1] == problem.horizon + 1
        and seg.key in allocation.residency
    )
    assert (
        sum(usage.mem_reads[s] for s in steps) + block_end_reads
        == allocation.report.mem_reads
    )
    assert (
        sum(usage.reg_reads[s] for s in steps) + block_end_reg_reads
        == allocation.report.reg_reads
    )
    # Writes never occur past the horizon (spills land on access steps
    # inside the block or are dropped as unreachable).
    assert (
        sum(usage.mem_writes[s] for s in steps)
        <= allocation.report.mem_writes
    )
    assert (
        sum(usage.reg_writes[s] for s in steps)
        <= allocation.report.reg_writes
    )


@given(solved_instances())
@settings(max_examples=60, deadline=None)
def test_access_sequence_matches_report(instance):
    if instance is None:
        return
    problem, allocation = instance
    sequence = access_sequence(allocation)
    assert len(sequence) == allocation.report.mem_accesses
    memory_names = {
        seg.name
        for segments in problem.segments.values()
        for seg in segments
        if seg.key not in allocation.residency
    }
    spilled = {
        seg.name
        for chain in allocation.chains
        for seg in chain
        if not seg.is_last
    }
    assert set(sequence) <= memory_names | spilled
