"""Tests for design-space exploration."""

import pytest

from repro.analysis.exploration import explore_design_space
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.exceptions import InfeasibleFlowError
from tests.conftest import make_lifetime


def lifetimes():
    return {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 2, 4),
        "d": make_lifetime("d", 4, 6),
    }


def grid():
    return explore_design_space(
        lifetimes(),
        6,
        register_counts=(0, 1, 3),
        memory_configs=(
            MemoryConfig(),
            MemoryConfig(divisor=2, voltage=3.3),
        ),
        energy_model=StaticEnergyModel(),
    )


def test_grid_covers_all_points():
    result = grid()
    assert len(result.points) == 6
    labels = {p.label() for p in result.points}
    assert "R=3, f/1" in labels


def test_energy_monotone_in_registers_per_config():
    result = grid()
    by_config: dict[int, list] = {}
    for p in result.feasible_points():
        by_config.setdefault(p.memory.divisor, []).append(p)
    for points in by_config.values():
        points.sort(key=lambda p: p.register_count)
        energies = [p.energy for p in points]
        assert energies == sorted(energies, reverse=True)


def test_best_point_is_feasible_minimum():
    result = grid()
    best = result.best()
    assert best.feasible
    assert all(
        best.energy <= p.energy + 1e-9 for p in result.feasible_points()
    )


def test_pareto_frontier_is_nondominated():
    result = grid()
    frontier = result.pareto_frontier()
    assert frontier
    for p in frontier:
        assert p.metrics is not None
        for q in result.feasible_points():
            if q.metrics is None or q is p:
                continue
            strictly_better = (
                q.metrics.storage_locations <= p.metrics.storage_locations
                and q.energy <= p.energy
                and (
                    q.metrics.storage_locations
                    < p.metrics.storage_locations
                    or q.energy < p.energy
                )
            )
            assert not strictly_better


def test_infeasible_points_marked():
    result = explore_design_space(
        {"u": make_lifetime("u", 2, 4), "v": make_lifetime("v", 2, 4)},
        6,
        register_counts=(0,),
        memory_configs=(MemoryConfig(divisor=6, voltage=2.0),),
    )
    [point] = result.points
    assert not point.feasible
    with pytest.raises(InfeasibleFlowError):
        point.energy
    assert "-" in result.format()


def test_no_feasible_point_raises_on_best():
    result = explore_design_space(
        {"u": make_lifetime("u", 2, 4), "v": make_lifetime("v", 2, 4)},
        6,
        register_counts=(0,),
        memory_configs=(MemoryConfig(divisor=6, voltage=2.0),),
    )
    with pytest.raises(InfeasibleFlowError):
        result.best()


def test_format_renders_table():
    text = grid().format()
    assert "design space" in text
    assert "f/2" in text
