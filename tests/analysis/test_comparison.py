"""Tests for the comparison harness."""

import random

import pytest

from repro.analysis.comparison import BASELINES, compare_allocators
from repro.energy import StaticEnergyModel
from repro.workloads.random_blocks import random_lifetimes


def test_compare_runs_all_baselines():
    rng = random.Random(21)
    lifetimes = random_lifetimes(rng, count=10, horizon=10)
    comparison = compare_allocators(
        lifetimes, 10, 3, StaticEnergyModel()
    )
    assert set(comparison.baselines) == set(BASELINES)
    assert comparison.flow.energy > 0


def test_flow_never_loses_with_matching_graph():
    rng = random.Random(22)
    lifetimes = random_lifetimes(rng, count=12, horizon=12)
    comparison = compare_allocators(
        lifetimes,
        12,
        3,
        StaticEnergyModel(),
        graph_style="all_pairs",
        split_at_reads=False,
    )
    best = comparison.best_baseline()
    assert comparison.flow.energy <= best.energy + 1e-9
    assert comparison.improvement_over(best.name) >= 1.0 - 1e-9


def test_subset_of_baselines():
    rng = random.Random(23)
    lifetimes = random_lifetimes(rng, count=6, horizon=8)
    comparison = compare_allocators(
        lifetimes, 8, 2, StaticEnergyModel(), baselines=("left-edge",)
    )
    assert list(comparison.baselines) == ["left-edge"]


def test_format_table_output():
    rng = random.Random(24)
    lifetimes = random_lifetimes(rng, count=6, horizon=8)
    comparison = compare_allocators(
        lifetimes, 8, 2, StaticEnergyModel()
    )
    text = comparison.format(title="demo")
    assert "demo" in text
    assert "flow" in text
    assert "two-phase" in text
