"""Bank-count x port-width x access-period design-space sweeps."""

import pytest

from repro.analysis.exploration import (
    StoragePoint,
    banked_grid,
    explore_storage_space,
)
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.core.storage import StorageSpec
from repro.exceptions import InfeasibleFlowError
from repro.workloads.registry import figure_example


def fig3():
    lifetimes, horizon, _ = figure_example("fig3")
    return lifetimes, horizon


def test_banked_grid_is_the_full_product():
    grid = banked_grid([1, 2], [1, 2], port_widths=(None, 1), capacity=2)
    assert len(grid) == 8
    assert {len(s.banks) for s in grid} == {1, 2}
    assert {s.reference.divisor for s in grid} == {1, 2}
    assert all(b.capacity == 2 for s in grid for b in s.banks)


def test_explore_storage_space_covers_grid():
    lifetimes, horizon = fig3()
    specs = banked_grid([1, 2], [1, 2])
    result = explore_storage_space(lifetimes, horizon, [1, 2], specs)
    assert len(result.points) == len(specs) * 2
    assert result.feasible_points()
    best = result.best()
    assert best.feasible
    assert best.energy == min(p.energy for p in result.feasible_points())
    table = result.format()
    assert "storage space" in table and "banks" in table


def test_warm_start_matches_cold_exactly():
    lifetimes, horizon = fig3()
    specs = banked_grid([1, 2, 3], [2], port_widths=(None, 1))
    warm = explore_storage_space(
        lifetimes, horizon, [1, 2, 3], specs, warm_start=True
    )
    cold = explore_storage_space(
        lifetimes, horizon, [1, 2, 3], specs, warm_start=False
    )
    assert len(warm.points) == len(cold.points)
    for w, c in zip(warm.points, cold.points):
        assert w.feasible == c.feasible
        if w.feasible:
            assert w.energy == c.energy  # exact, not approx


def test_points_match_direct_allocate():
    lifetimes, horizon = fig3()
    spec = StorageSpec.banked(2, 2)
    result = explore_storage_space(lifetimes, horizon, [2], [spec])
    [point] = result.points
    # The sweep rescales the model to the reference supply; rebuild the
    # same operating point for the direct solve.
    from repro.energy import StaticEnergyModel

    model = StaticEnergyModel().with_voltages(spec.reference.voltage, 5.0)
    problem = AllocationProblem(
        lifetimes,
        register_count=2,
        horizon=horizon,
        energy_model=model,
        storage=spec,
    )
    direct = allocate(problem)
    assert point.energy == pytest.approx(direct.total_energy)


def test_infeasible_point_raises_on_energy():
    point = StoragePoint(
        register_count=0,
        spec=StorageSpec.banked(1, 2, capacity=0),
        metrics=None,
    )
    assert not point.feasible
    with pytest.raises(InfeasibleFlowError):
        point.energy
    assert "cap 0" in point.label()


def test_all_infeasible_grid_raises_on_best():
    lifetimes, horizon = fig3()
    specs = banked_grid([2], [2], capacity=0)
    result = explore_storage_space(lifetimes, horizon, [0], specs)
    assert result.feasible_points() == []
    with pytest.raises(InfeasibleFlowError):
        result.best()
