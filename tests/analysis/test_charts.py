"""Tests for the ASCII lifetime charts."""

from repro.analysis.charts import allocation_chart, lifetime_chart
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.workloads import FIGURE3_HORIZON, figure3_lifetimes
from tests.conftest import make_lifetime


def test_chart_marks_events():
    lifetimes = {"v": make_lifetime("v", 1, (3, 5))}
    chart = lifetime_chart(lifetimes, 5)
    lines = chart.splitlines()
    assert lines[0].split() == ["step", "v"]
    assert lines[1].endswith("W")  # write at step 1
    assert lines[3].endswith("R")  # read at step 3
    assert lines[2].endswith("|")  # live span


def test_chart_residency_styles():
    lifetimes = {
        "r": make_lifetime("r", 1, 4),
        "m": make_lifetime("m", 1, 4),
    }
    chart = lifetime_chart(lifetimes, 4, in_register={"r"})
    # Memory resident drawn dotted, register resident solid.
    assert ":" in chart
    assert "|" in chart


def test_chart_row_count():
    lifetimes = {"v": make_lifetime("v", 1, 3)}
    chart = lifetime_chart(lifetimes, 6)
    # header + steps 1..7 (x+1 row shows live-outs)
    assert len(chart.splitlines()) == 8


def test_allocation_chart_figure3():
    problem = AllocationProblem(figure3_lifetimes(), 1, FIGURE3_HORIZON)
    chart = allocation_chart(allocate(problem))
    assert "legend:" in chart
    # The chain d,e,b,c is solid; a and f are dotted.
    assert ":" in chart


def test_chart_accepts_iterables():
    items = [make_lifetime("a", 1, 3), make_lifetime("b", 2, 4)]
    as_list = lifetime_chart(items, 4)
    as_map = lifetime_chart({lt.name: lt for lt in items}, 4)
    assert as_list == as_map


def test_empty_chart():
    assert lifetime_chart({}, 3).splitlines()[0].startswith("step")
