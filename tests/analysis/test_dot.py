"""Tests for the DOT exporters."""

from repro.analysis.dot import block_to_dot, network_to_dot
from repro.core import AllocationProblem, allocate, build_network
from repro.workloads import FIGURE3_HORIZON, dct4, figure3_lifetimes


def test_block_dot_structure():
    dot = block_to_dot(dct4())
    assert dot.startswith('digraph "dct4"')
    assert dot.rstrip().endswith("}")
    assert "shape=box" in dot  # sources
    assert "shape=diamond" in dot  # sinks
    assert "->" in dot
    # Every op appears as a node.
    for op in dct4():
        assert f'"{op.name}"' in dot


def test_network_dot_marks_flow():
    problem = AllocationProblem(figure3_lifetimes(), 1, FIGURE3_HORIZON)
    built = build_network(problem)
    allocation = allocate(problem)
    plain = network_to_dot(built)
    solved = network_to_dot(built, allocation)
    assert "penwidth" not in plain
    assert "penwidth=2.5" in solved
    assert solved.count("color=red") == sum(
        1 for f in allocation.flow.flows if f > 0
    )


def test_network_dot_orders_left_to_right():
    problem = AllocationProblem(figure3_lifetimes(), 1, FIGURE3_HORIZON)
    built = build_network(problem)
    dot = network_to_dot(built)
    assert "rankdir=LR" in dot
    assert '"s"' in dot and '"t"' in dot


def test_forced_arcs_highlighted():
    from repro.energy import MemoryConfig
    from repro.workloads import FIGURE1_HORIZON, figure1_lifetimes

    problem = AllocationProblem(
        figure1_lifetimes(),
        2,
        FIGURE1_HORIZON,
        memory=MemoryConfig(divisor=2, voltage=5.0),
    )
    dot = network_to_dot(build_network(problem))
    assert "color=darkorange" in dot  # the bold (forced) arcs of fig 1c
