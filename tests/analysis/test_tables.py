"""Tests for the table formatter."""

from repro.analysis.tables import format_table


def test_alignment_and_title():
    text = format_table(
        ("name", "value"),
        [("x", 1.5), ("long-name", 22)],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in text  # floats at two decimals
    assert "22" in text


def test_empty_rows():
    text = format_table(("a", "b"), [])
    assert text.count("\n") == 1  # header + rule only


def test_wide_cells_stretch_columns():
    text = format_table(("h",), [("wiiiiiiide",)])
    header, rule, row = text.splitlines()
    assert len(rule) >= len("wiiiiiiide")
