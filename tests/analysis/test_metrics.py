"""Tests for solution metrics."""

import pytest

from repro.analysis.metrics import (
    improvement_factor,
    memory_location_switching,
    metrics_of,
)
from repro.baselines import left_edge_allocate
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
from repro.exceptions import AllocationError
from tests.conftest import make_lifetime


def lifetimes():
    return {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 3, 6),
    }


def test_metrics_of_allocation():
    allocation = allocate(AllocationProblem(lifetimes(), 1, 6))
    metrics = metrics_of(allocation)
    assert metrics.name == "flow"
    assert metrics.energy == pytest.approx(allocation.objective)
    assert metrics.storage_locations == allocation.storage_locations
    assert len(metrics.row()) == 6


def test_metrics_of_baseline():
    result = left_edge_allocate(lifetimes(), 6, 1, StaticEnergyModel())
    metrics = metrics_of(result)
    assert metrics.name == "left-edge"
    assert metrics.energy == pytest.approx(result.objective)


def test_improvement_factor_accepts_mixed_kinds():
    allocation = allocate(AllocationProblem(lifetimes(), 1, 6))
    baseline = left_edge_allocate(lifetimes(), 6, 1, StaticEnergyModel())
    factor = improvement_factor(baseline, allocation)
    assert factor >= 1.0 - 1e-9
    assert improvement_factor(10.0, 5.0) == pytest.approx(2.0)
    assert improvement_factor(metrics_of(baseline), allocation) == pytest.approx(
        factor
    )


def test_improvement_factor_rejects_zero_denominator():
    with pytest.raises(AllocationError):
        improvement_factor(10.0, 0.0)


def test_memory_location_switching():
    model = PairwiseSwitchingModel(
        {("a", "b"): 0.25}, start_activity=0.5
    )
    chains = [[lifetimes()["a"], lifetimes()["b"]]]
    total = memory_location_switching(chains, model)
    per_bit = model.table.energy(model.table.reg_bit, 5.0)
    assert total == pytest.approx((0.5 + 0.25) * 16 * per_bit)
