"""Tests for result serialisation."""

import json

import pytest

from repro.analysis.comparison import compare_allocators
from repro.analysis.export import (
    allocation_to_dict,
    comparison_to_dict,
    report_to_dict,
    to_json,
)
from repro.core import AllocationProblem, allocate, reallocate_memory
from repro.energy import StaticEnergyModel
from tests.conftest import make_lifetime


def allocation():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 3, 6),
    }
    return allocate(
        AllocationProblem(lifetimes, 1, 6, energy_model=StaticEnergyModel())
    )


def test_report_round_trips_through_json():
    result = allocation()
    data = report_to_dict(result.report)
    parsed = json.loads(to_json(data))
    assert parsed["total_energy"] == pytest.approx(
        result.report.total_energy
    )
    assert parsed["mem_reads"] == result.report.mem_reads


def test_allocation_export_structure():
    result = allocation()
    data = allocation_to_dict(result)
    assert data["problem"]["register_count"] == 1
    assert data["registers_used"] == result.registers_used
    assert len(data["chains"]) == result.registers_used
    for chain in data["chains"]:
        for entry in chain:
            assert set(entry) == {"variable", "segment", "start", "end"}
    assert data["objective"] == pytest.approx(result.objective)
    json.loads(to_json(data))  # must be JSON-serialisable


def test_allocation_export_with_layout():
    result = allocation()
    layout = reallocate_memory(result)
    data = allocation_to_dict(result, layout)
    assert set(data["memory_layout"]["addresses"]) == set(
        result.memory_addresses
    )


def test_comparison_export():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
    }
    comparison = compare_allocators(
        lifetimes, 5, 1, StaticEnergyModel(), baselines=("left-edge",)
    )
    data = comparison_to_dict(comparison)
    assert "flow" in data
    assert data["baselines"]["left-edge"]["improvement_factor"] >= 1.0 - 1e-9
    json.loads(to_json(data))
