"""Tests for the left-edge baseline."""

from repro.baselines.left_edge import left_edge_allocate
from repro.energy import StaticEnergyModel
from tests.conftest import make_lifetime


def lifetimes():
    return {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 3, 6),
        "d": make_lifetime("d", 4, 7),
    }


def test_packs_compatible_lifetimes():
    result = left_edge_allocate(lifetimes(), 7, 2, StaticEnergyModel())
    # Density is 3 at k=4; with 2 registers one variable must overflow.
    assert len(result.memory_variables()) == 1
    assert result.registers_used <= 2


def test_reuses_freed_registers():
    result = left_edge_allocate(lifetimes(), 7, 3, StaticEnergyModel())
    # a [1,3] then c [3,6] can share register 0.
    assert result.memory_variables() == []
    chain0_names = [lt.name for lt in result.chains[0]]
    assert chain0_names[0] == "a"
    assert "c" in chain0_names


def test_zero_registers():
    result = left_edge_allocate(lifetimes(), 7, 0, StaticEnergyModel())
    assert result.chains == []
    assert len(result.memory_variables()) == 4


def test_deterministic():
    a = left_edge_allocate(lifetimes(), 7, 2, StaticEnergyModel())
    b = left_edge_allocate(lifetimes(), 7, 2, StaticEnergyModel())
    assert a.memory_variables() == b.memory_variables()
    assert [[lt.name for lt in c] for c in a.chains] == [
        [lt.name for lt in c] for c in b.chains
    ]


def test_energy_accounting_consistent():
    result = left_edge_allocate(lifetimes(), 7, 2, StaticEnergyModel())
    mem_vars = result.memory_variables()
    expected_mem = sum(
        10.0 + 5.0 * lifetimes()[name].read_count for name in mem_vars
    )
    assert result.report.mem_energy == expected_mem
