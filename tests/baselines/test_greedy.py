"""Tests for the greedy energy-aware partition baseline."""

from repro.baselines.greedy_partition import greedy_partition_allocate
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import StaticEnergyModel
from tests.conftest import make_lifetime


def test_prefers_high_access_variables():
    lifetimes = {
        "hot": make_lifetime("hot", 1, (2, 3, 4, 5)),
        "cold": make_lifetime("cold", 1, 5),
    }
    result = greedy_partition_allocate(lifetimes, 5, 1, StaticEnergyModel())
    assert result.register_variables() == ["hot"]
    assert result.memory_variables() == ["cold"]


def test_respects_register_capacity():
    lifetimes = {
        f"v{i}": make_lifetime(f"v{i}", 1, 5) for i in range(5)
    }
    result = greedy_partition_allocate(lifetimes, 5, 2, StaticEnergyModel())
    assert len(result.register_variables()) == 2


def test_never_beats_optimal_flow():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, (4, 6)),
        "c": make_lifetime("c", 3, 7),
        "d": make_lifetime("d", 5, 8),
    }
    model = StaticEnergyModel()
    greedy = greedy_partition_allocate(lifetimes, 8, 2, model)
    problem = AllocationProblem(
        lifetimes, 2, 8, energy_model=model,
        graph_style="all_pairs", split_at_reads=False,
    )
    assert allocate(problem).objective <= greedy.objective + 1e-9


def test_zero_registers():
    lifetimes = {"a": make_lifetime("a", 1, 2)}
    result = greedy_partition_allocate(lifetimes, 2, 0, StaticEnergyModel())
    assert result.register_variables() == []
