"""Tests for the Chang-Pedram-style register binding."""

import pytest

from repro.baselines.chang_pedram import chang_pedram_binding
from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
from repro.exceptions import AllocationError
from repro.workloads import FIGURE3_ACTIVITIES, FIGURE3_HORIZON, figure3_lifetimes
from tests.conftest import make_lifetime


def test_figure3_binding_reproduces_paper_chains():
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    binding = chang_pedram_binding(
        figure3_lifetimes(), FIGURE3_HORIZON, model
    )
    chains = sorted(
        tuple(lt.name for lt in chain) for chain in binding.chains
    )
    assert chains == [("a", "b", "c"), ("d", "e", "f")]
    # Total switching 2.4 including the 0.5 start activity per chain.
    assert binding.total_cost == pytest.approx(2.4)


def test_covers_every_variable():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 3, 6),
    }
    binding = chang_pedram_binding(lifetimes, 6, StaticEnergyModel())
    names = sorted(lt.name for c in binding.chains for lt in c)
    assert names == ["a", "b", "c"]


def test_register_count_below_density_rejected():
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 2, 5),
    }
    with pytest.raises(AllocationError, match="at least"):
        chang_pedram_binding(
            lifetimes, 5, StaticEnergyModel(), register_count=1
        )


def test_extra_registers_allowed():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    binding = chang_pedram_binding(
        lifetimes, 3, StaticEnergyModel(), register_count=3
    )
    assert len(binding.chains) == 1  # bypass absorbs the spare flow
