"""Tests for the graph-colouring baseline."""

from repro.baselines.graph_coloring import graph_coloring_allocate
from repro.energy import StaticEnergyModel
from tests.conftest import make_lifetime


def test_colours_interval_graph_without_spills_when_k_suffices():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
        "c": make_lifetime("c", 3, 6),
    }
    result = graph_coloring_allocate(lifetimes, 6, 2, StaticEnergyModel())
    # Interval graphs are perfect: density 2 needs exactly 2 colours.
    assert result.memory_variables() == []
    assert result.registers_used <= 2


def test_spills_when_pressure_exceeds_k():
    lifetimes = {
        f"v{i}": make_lifetime(f"v{i}", 1, 5) for i in range(4)
    }
    result = graph_coloring_allocate(lifetimes, 5, 2, StaticEnergyModel())
    assert len(result.memory_variables()) == 2
    assert len(result.register_variables()) == 2


def test_no_two_overlapping_share_a_register():
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 2, 6),
        "c": make_lifetime("c", 3, 5),
        "d": make_lifetime("d", 5, 8),
    }
    result = graph_coloring_allocate(lifetimes, 8, 2, StaticEnergyModel())
    for chain in result.chains:
        for i, x in enumerate(chain):
            for y in chain[i + 1 :]:
                assert not x.overlaps(y)


def test_spill_metric_prefers_cheap_high_degree():
    # v_long interferes with everything and has one read: the cheapest
    # spill; the short multi-read variables should stay in registers.
    lifetimes = {
        "long": make_lifetime("long", 1, 9),
        "m1": make_lifetime("m1", 1, (2, 3, 4)),
        "m2": make_lifetime("m2", 3, (5, 6, 7)),
        "m3": make_lifetime("m3", 2, (4, 8)),
    }
    result = graph_coloring_allocate(lifetimes, 9, 2, StaticEnergyModel())
    if result.memory_variables():
        assert "long" in result.memory_variables()


def test_zero_registers_spills_all():
    lifetimes = {"a": make_lifetime("a", 1, 2)}
    result = graph_coloring_allocate(lifetimes, 2, 0, StaticEnergyModel())
    assert result.memory_variables() == ["a"]
