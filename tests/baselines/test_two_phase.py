"""Tests for the two-phase baseline."""

import pytest

from repro.baselines.two_phase import two_phase_allocate
from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
from repro.exceptions import AllocationError
from repro.workloads import (
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    figure3_lifetimes,
)
from tests.conftest import make_lifetime


def test_figure3_max_switching_partition():
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    result = two_phase_allocate(
        figure3_lifetimes(),
        FIGURE3_HORIZON,
        1,
        model,
        partition_rule="max_switching",
    )
    # The paper keeps the higher-switching chain {a,b,c} in the file.
    assert result.register_variables() == ["a", "b", "c"]
    assert result.memory_variables() == ["d", "e", "f"]
    assert result.report.mem_accesses == 6


def test_partition_rules_can_differ():
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    saving = two_phase_allocate(
        figure3_lifetimes(), FIGURE3_HORIZON, 1, model,
        partition_rule="max_saving",
    )
    # max_saving keeps the LOW-switching chain (register cost is lower).
    assert saving.register_variables() == ["d", "e", "f"]


def test_unknown_partition_rule_rejected():
    with pytest.raises(AllocationError):
        two_phase_allocate(
            figure3_lifetimes(),
            FIGURE3_HORIZON,
            1,
            StaticEnergyModel(),
            partition_rule="nope",  # type: ignore[arg-type]
        )


def test_whole_chains_move_together():
    lifetimes = figure3_lifetimes()
    result = two_phase_allocate(
        lifetimes, FIGURE3_HORIZON, 1, StaticEnergyModel()
    )
    in_regs = set(result.register_variables())
    # Exactly one of the two bound chains is kept.
    assert in_regs in ({"a", "b", "c"}, {"d", "e", "f"})


def test_enough_registers_keeps_everything():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
    }
    result = two_phase_allocate(lifetimes, 4, 2, StaticEnergyModel())
    assert result.memory_variables() == []
    assert result.report.mem_accesses == 0


def test_zero_registers_everything_in_memory():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
    }
    result = two_phase_allocate(lifetimes, 4, 0, StaticEnergyModel())
    assert result.register_variables() == []
    assert result.report.mem_accesses == 4
