"""Tests for the synthetic RSP application (table-1 substrate)."""

import random

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.exceptions import WorkloadError
from repro.lifetimes import extract_lifetimes, max_density
from repro.workloads.rsp import (
    RSP_MAX_DENSITY,
    RSP_RESOURCES,
    rsp_block,
    rsp_schedule,
)


def test_default_density_is_26():
    # The only structural fact the paper reports about its RSP example.
    schedule = rsp_schedule()
    lifetimes = extract_lifetimes(schedule)
    assert max_density(lifetimes.values(), schedule.length) == RSP_MAX_DENSITY


def test_block_is_valid_and_sized():
    block = rsp_block()
    assert len(block) > 50
    assert {"det", "dop_r", "dop_i"} <= block.live_out


def test_traces_attach_when_rng_given():
    block = rsp_block(rng=random.Random(7))
    assert block.variable("xr0").trace
    untraced = rsp_block()
    assert not untraced.variable("xr0").trace


def test_taps_validation():
    with pytest.raises(WorkloadError):
        rsp_block(taps=1)


def test_deterministic_schedule():
    a = rsp_schedule()
    b = rsp_schedule()
    assert a.start == b.start


def test_table1_sweep_feasible_at_16_registers():
    schedule = rsp_schedule()
    for divisor, voltage in ((1, 5.0), (2, 3.16), (4, 2.19)):
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=16,
            energy_model=StaticEnergyModel().with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        allocation = allocate(problem)
        assert allocation.report.mem_accesses > 0
        assert allocation.report.reg_accesses > 0


def test_slower_memory_means_lower_energy():
    # The table-1 headline: restricting access and scaling voltage saves
    # energy despite the forced register residency.
    schedule = rsp_schedule()
    energies = []
    for divisor, voltage in ((1, 5.0), (2, 3.16), (4, 2.19)):
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=16,
            energy_model=StaticEnergyModel().with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        energies.append(allocate(problem).objective)
    assert energies[0] > energies[1] > energies[2]
