"""Tests for the registered task-graph (DAG) workloads."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.registry import DAG_NAMES, dag_workload


def test_registry_exposes_the_expected_graphs():
    assert DAG_NAMES == ("diamond", "fanin")


@pytest.mark.parametrize("name", DAG_NAMES)
def test_graphs_are_acyclic_and_connected(name):
    graph = dag_workload(name)
    order = graph.topological_order()  # raises on cycles
    assert [t.name for t in order]
    assert graph.edges  # every registered DAG has real precedence
    names = {t.name for t in graph.tasks}
    touched = {u for u, _ in graph.edges} | {v for _, v in graph.edges}
    assert touched <= names


def test_diamond_shape():
    graph = dag_workload("diamond")
    assert {t.name for t in graph.tasks} == {"front", "left", "right", "back"}
    assert ("front", "left") in graph.edges
    assert ("front", "right") in graph.edges
    assert ("left", "back") in graph.edges
    assert ("right", "back") in graph.edges
    # the left branch runs at a higher frame rate
    assert graph.task("left").rate == 2


def test_fanin_shape():
    graph = dag_workload("fanin")
    assert {t.name for t in graph.tasks} == {
        "src_a", "src_b", "src_c", "merge", "tail",
    }
    for source in ("src_a", "src_b", "src_c"):
        assert (source, "merge") in graph.edges
    assert ("merge", "tail") in graph.edges


@pytest.mark.parametrize("name", DAG_NAMES)
def test_same_seed_is_deterministic(name):
    first = dag_workload(name, seed=7)
    second = dag_workload(name, seed=7)
    assert first.to_dict() == second.to_dict()


def test_unknown_graph_is_a_workload_error():
    with pytest.raises(WorkloadError):
        dag_workload("moebius")
