"""E2/E3 instance checks: figures 3 and 4 reconstructions."""

import pytest

from repro.core.network_builder import build_network
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
from repro.workloads.paper_examples import (
    FIGURE3_ACTIVITIES,
    FIGURE3_HORIZON,
    FIGURE4_ACTIVITIES,
    FIGURE4_HORIZON,
    figure3_lifetimes,
    figure4_lifetimes,
)


def handoff_names(problem):
    built = build_network(problem)
    return {
        (a.data[1].name, a.data[2].name)
        for a in built.network.arcs
        if a.data and a.data[0] == "handoff" and a.data[1] and a.data[2]
    }


def test_figure3_adjacent_graph_matches_printed_arcs():
    problem = AllocationProblem(
        figure3_lifetimes(), 1, FIGURE3_HORIZON,
        energy_model=StaticEnergyModel(),
    )
    assert handoff_names(problem) == set(FIGURE3_ACTIVITIES)


def test_figure3_density():
    problem = AllocationProblem(figure3_lifetimes(), 1, FIGURE3_HORIZON)
    assert problem.max_density == 2  # one register + one memory location


def test_figure3_simultaneous_beats_two_phase():
    from repro.baselines import two_phase_allocate

    lifetimes = figure3_lifetimes()
    model = PairwiseSwitchingModel(FIGURE3_ACTIVITIES)
    baseline = two_phase_allocate(
        lifetimes, FIGURE3_HORIZON, 1, model, partition_rule="max_switching"
    )
    flow = allocate(
        AllocationProblem(
            lifetimes, 1, FIGURE3_HORIZON, energy_model=model
        )
    )
    # Paper: the simultaneous solution is the 4-variable chain d,e,b,c
    # with fewer memory accesses and ~1.3-1.4x lower energy.
    [chain] = flow.chains
    assert [seg.name for seg in chain] == ["d", "e", "b", "c"]
    assert flow.report.mem_accesses == 4
    assert baseline.report.mem_accesses == 6
    ratio = baseline.objective / flow.objective
    assert 1.2 <= ratio <= 1.6


def test_figure4_adds_f_to_b_arc():
    assert ("f", "b") in FIGURE4_ACTIVITIES
    lifetimes = figure4_lifetimes()
    # f's first read precedes b's write, so the pairing is compatible.
    assert lifetimes["f"].read_times[0] <= lifetimes["b"].write_time


def test_figure4_f_is_split_lifetime():
    problem = AllocationProblem(figure4_lifetimes(), 1, FIGURE4_HORIZON)
    assert len(problem.segments["f"]) == 2
    assert problem.segments["f"][0].reads == (4,)
    assert problem.segments["f"][1].reads == (8,)


def test_figure4_split_solution_minimises_accesses():
    lifetimes = figure4_lifetimes()
    model = PairwiseSwitchingModel(FIGURE4_ACTIVITIES)
    split = allocate(
        AllocationProblem(lifetimes, 1, FIGURE4_HORIZON, energy_model=model)
    )
    unsplit = allocate(
        AllocationProblem(
            lifetimes,
            1,
            FIGURE4_HORIZON,
            energy_model=model,
            graph_style="all_pairs",
            split_at_reads=False,
        )
    )
    # Figure 4c: splitting f yields strictly fewer memory accesses than
    # any unsplit solution, at the minimum storage-location count.
    assert split.report.mem_accesses < unsplit.report.mem_accesses
    assert split.report.mem_accesses == 4
    assert split.storage_locations == 2
    [chain] = split.chains
    assert [(seg.name, seg.index) for seg in chain] == [
        ("d", 0), ("e", 0), ("f", 0), ("b", 0), ("c", 0),
    ]


def test_figure4_improvement_over_two_phase():
    from repro.baselines import two_phase_allocate

    lifetimes = figure4_lifetimes()
    model = PairwiseSwitchingModel(FIGURE4_ACTIVITIES)
    baseline = two_phase_allocate(
        lifetimes,
        FIGURE4_HORIZON,
        1,
        model,
        binding_style="all_pairs",
        partition_rule="max_switching",
    )
    split = allocate(
        AllocationProblem(lifetimes, 1, FIGURE4_HORIZON, energy_model=model)
    )
    # Paper reports 1.35x for figure 4c over 4a.
    ratio = baseline.objective / split.objective
    assert 1.2 <= ratio <= 1.8
