"""Tests for instance serialisation."""

import json
import random

import pytest

from repro.core import allocate
from repro.energy import ActivityEnergyModel, MemoryConfig
from repro.exceptions import WorkloadError
from repro.core.problem import AllocationProblem
from repro.workloads.random_blocks import random_lifetimes
from repro.workloads.serialize import (
    dumps,
    lifetimes_from_dict,
    lifetimes_to_dict,
    loads,
    problem_from_dict,
)
from tests.conftest import make_lifetime


def sample_problem() -> AllocationProblem:
    lifetimes = random_lifetimes(
        random.Random(4), count=8, horizon=10, traced=True
    )
    return AllocationProblem(
        lifetimes,
        5,
        10,
        memory=MemoryConfig(divisor=2, voltage=3.3),
        graph_style="all_pairs",
        split_at_reads=False,
        forced_segments=frozenset({("v0", 0)}),
    )


def test_lifetime_round_trip():
    original = {
        "a": make_lifetime("a", 1, (3, 5), live_out=False, width=8,
                           trace=(1, 2, 3)),
        "b": make_lifetime("b", 2, 11, live_out=True),
    }
    rebuilt = lifetimes_from_dict(lifetimes_to_dict(original))
    assert list(rebuilt) == ["a", "b"]
    assert rebuilt["a"].read_times == (3, 5)
    assert rebuilt["a"].variable.width == 8
    assert rebuilt["a"].variable.trace == (1, 2, 3)
    assert rebuilt["b"].live_out


def test_problem_round_trip_preserves_solution():
    problem = sample_problem()
    rebuilt = loads(dumps(problem))
    assert rebuilt.register_count == problem.register_count
    assert rebuilt.horizon == problem.horizon
    assert rebuilt.graph_style == problem.graph_style
    assert rebuilt.split_at_reads == problem.split_at_reads
    assert rebuilt.forced_segments == problem.forced_segments
    assert rebuilt.memory.divisor == 2
    # Same optimum (default static model on both sides).
    assert allocate(rebuilt).objective == pytest.approx(
        allocate(problem).objective
    )


def test_energy_model_attached_at_load():
    problem = sample_problem()
    rebuilt = loads(dumps(problem), energy_model=ActivityEnergyModel())
    assert isinstance(rebuilt.energy_model, ActivityEnergyModel)


def test_json_is_plain_data():
    payload = json.loads(dumps(sample_problem()))
    assert payload["schema"] == "repro-instance-v1"
    assert isinstance(payload["lifetimes"], list)


def test_unknown_schema_rejected():
    with pytest.raises(WorkloadError, match="schema"):
        problem_from_dict({"schema": "nope"})


def test_missing_field_rejected():
    with pytest.raises(WorkloadError, match="missing field"):
        lifetimes_from_dict([{"name": "x"}])


def test_duplicate_lifetime_rejected():
    data = lifetimes_to_dict({"a": make_lifetime("a", 1, 2)}) * 2
    with pytest.raises(WorkloadError, match="duplicate"):
        lifetimes_from_dict(data)


def test_restricted_config_round_trips_with_scaled_model():
    # A section-5.2 operating point: access period c=2, scaled supply.
    memory = MemoryConfig.scaled(2)
    model = ActivityEnergyModel().with_voltages(memory.voltage, 5.0)
    lifetimes = random_lifetimes(
        random.Random(9), count=6, horizon=10, traced=True
    )
    problem = AllocationProblem(
        lifetimes, 4, 10, energy_model=model, memory=memory
    )
    rebuilt = loads(dumps(problem))
    assert rebuilt.memory == problem.memory
    assert isinstance(rebuilt.energy_model, ActivityEnergyModel)
    assert rebuilt.energy_model.mem_voltage == pytest.approx(memory.voltage)
    # The reloaded instance yields the same optimum under the *embedded*
    # model — no silent reversion to the nominal 5 V static default.
    assert allocate(rebuilt).objective == pytest.approx(
        allocate(problem).objective
    )


def test_energy_model_round_trip_property():
    from repro.energy import PairwiseSwitchingModel, StaticEnergyModel
    from repro.energy.capacitance import CapacitanceTable
    from repro.workloads.serialize import (
        energy_model_from_dict,
        energy_model_to_dict,
    )

    rng = random.Random(31)
    for _ in range(25):
        table = CapacitanceTable(
            mem_read=rng.uniform(1, 50),
            mem_write=rng.uniform(1, 50),
            reg_read=rng.uniform(0.1, 5),
            reg_write=rng.uniform(0.1, 5),
            reg_bit=rng.uniform(0.01, 1),
        )
        mem_v = rng.choice((5.0, 3.3, 2.5, 1.8))
        kind = rng.choice(("static", "activity", "pairwise"))
        if kind == "static":
            model = StaticEnergyModel(table, mem_v, 5.0)
        elif kind == "activity":
            model = ActivityEnergyModel(
                table, mem_v, 5.0, start_activity=rng.random()
            )
        else:
            model = PairwiseSwitchingModel(
                activities={
                    ("a", "b"): rng.random(),
                    ("b", "c"): rng.random(),
                },
                table=table,
                mem_voltage=mem_v,
                start_activity=rng.random(),
                default_activity=rng.random(),
            )
        data = energy_model_to_dict(model)
        rebuilt = energy_model_from_dict(data)
        assert rebuilt == model
        # Serialisation is a fixpoint (stable embedded form).
        assert energy_model_to_dict(rebuilt) == data


def test_custom_model_is_not_embedded():
    from repro.workloads.serialize import energy_model_to_dict

    class Custom(ActivityEnergyModel):
        """A user-defined subclass: code, not data."""

    assert energy_model_to_dict(Custom()) is None
    payload = json.loads(
        dumps(
            AllocationProblem(
                {"a": make_lifetime("a", 1, 3)}, 1, 4, energy_model=Custom()
            )
        )
    )
    assert "energy_model" not in payload


def test_unknown_energy_model_kind_rejected():
    from repro.workloads.serialize import energy_model_from_dict

    with pytest.raises(WorkloadError, match="unknown energy model"):
        energy_model_from_dict({"kind": "quantum"})
    with pytest.raises(WorkloadError, match="missing field"):
        energy_model_from_dict({})


def test_explicit_model_wins_over_embedded_parameters():
    memory = MemoryConfig.scaled(4)
    problem = AllocationProblem(
        {"a": make_lifetime("a", 1, 3)},
        1,
        4,
        energy_model=ActivityEnergyModel().with_voltages(memory.voltage, 5.0),
        memory=memory,
    )
    rebuilt = loads(dumps(problem), energy_model=ActivityEnergyModel())
    assert rebuilt.energy_model == ActivityEnergyModel()
