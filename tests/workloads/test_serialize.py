"""Tests for instance serialisation."""

import json
import random

import pytest

from repro.core import allocate
from repro.energy import ActivityEnergyModel, MemoryConfig
from repro.exceptions import WorkloadError
from repro.core.problem import AllocationProblem
from repro.workloads.random_blocks import random_lifetimes
from repro.workloads.serialize import (
    dumps,
    lifetimes_from_dict,
    lifetimes_to_dict,
    loads,
    problem_from_dict,
)
from tests.conftest import make_lifetime


def sample_problem() -> AllocationProblem:
    lifetimes = random_lifetimes(
        random.Random(4), count=8, horizon=10, traced=True
    )
    return AllocationProblem(
        lifetimes,
        5,
        10,
        memory=MemoryConfig(divisor=2, voltage=3.3),
        graph_style="all_pairs",
        split_at_reads=False,
        forced_segments=frozenset({("v0", 0)}),
    )


def test_lifetime_round_trip():
    original = {
        "a": make_lifetime("a", 1, (3, 5), live_out=False, width=8,
                           trace=(1, 2, 3)),
        "b": make_lifetime("b", 2, 11, live_out=True),
    }
    rebuilt = lifetimes_from_dict(lifetimes_to_dict(original))
    assert list(rebuilt) == ["a", "b"]
    assert rebuilt["a"].read_times == (3, 5)
    assert rebuilt["a"].variable.width == 8
    assert rebuilt["a"].variable.trace == (1, 2, 3)
    assert rebuilt["b"].live_out


def test_problem_round_trip_preserves_solution():
    problem = sample_problem()
    rebuilt = loads(dumps(problem))
    assert rebuilt.register_count == problem.register_count
    assert rebuilt.horizon == problem.horizon
    assert rebuilt.graph_style == problem.graph_style
    assert rebuilt.split_at_reads == problem.split_at_reads
    assert rebuilt.forced_segments == problem.forced_segments
    assert rebuilt.memory.divisor == 2
    # Same optimum (default static model on both sides).
    assert allocate(rebuilt).objective == pytest.approx(
        allocate(problem).objective
    )


def test_energy_model_attached_at_load():
    problem = sample_problem()
    rebuilt = loads(dumps(problem), energy_model=ActivityEnergyModel())
    assert isinstance(rebuilt.energy_model, ActivityEnergyModel)


def test_json_is_plain_data():
    payload = json.loads(dumps(sample_problem()))
    assert payload["schema"] == "repro-instance-v1"
    assert isinstance(payload["lifetimes"], list)


def test_unknown_schema_rejected():
    with pytest.raises(WorkloadError, match="schema"):
        problem_from_dict({"schema": "nope"})


def test_missing_field_rejected():
    with pytest.raises(WorkloadError, match="missing field"):
        lifetimes_from_dict([{"name": "x"}])


def test_duplicate_lifetime_rejected():
    data = lifetimes_to_dict({"a": make_lifetime("a", 1, 2)}) * 2
    with pytest.raises(WorkloadError, match="duplicate"):
        lifetimes_from_dict(data)
