"""Tests for the DSP kernel workloads."""

import random

import pytest

from repro.core.pipeline import allocate_block
from repro.exceptions import WorkloadError
from repro.ir.operations import OpCode
from repro.workloads.dsp_kernels import (
    dct4,
    elliptic_wave_filter,
    fir_filter,
    iir_biquad,
)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: fir_filter(6),
        lambda: iir_biquad(2),
        elliptic_wave_filter,
        dct4,
    ],
)
def test_kernels_build_and_allocate(factory):
    block = factory()
    result = allocate_block(block, register_count=4)
    assert result.total_energy > 0
    assert result.allocation.report.reg_accesses > 0


def test_fir_structure():
    block = fir_filter(5)
    muls = [op for op in block if op.opcode is OpCode.MUL]
    adds = [op for op in block if op.opcode is OpCode.ADD]
    assert len(muls) == 5
    assert len(adds) == 4
    assert len(block.live_out) == 1


def test_fir_tap_validation():
    with pytest.raises(WorkloadError):
        fir_filter(1)


def test_iir_sections_validation():
    with pytest.raises(WorkloadError):
        iir_biquad(0)


def test_iir_state_live_out():
    block = iir_biquad(2)
    assert {"nz1_0", "nz2_0", "nz1_1", "nz2_1"} <= block.live_out


def test_ewf_operation_mix():
    block = elliptic_wave_filter()
    muls = [op for op in block if op.opcode is OpCode.MUL]
    adds = [op for op in block if op.opcode is OpCode.ADD]
    assert len(muls) == 8  # the benchmark's 8 multiplications
    assert len(adds) == 26  # and 26 additions
    assert len(block.live_out) == 9  # 8 states + output


def test_dct_outputs():
    block = dct4()
    assert {"y0", "y1", "y2", "y3"} <= block.live_out


def test_traces_only_with_rng():
    rng = random.Random(11)
    traced = fir_filter(4, rng)
    plain = fir_filter(4)
    assert traced.variable("x0").trace
    assert not plain.variable("x0").trace


def test_diffeq_structure():
    from repro.workloads.dsp_kernels import diffeq

    block = diffeq()
    muls = [op for op in block if op.opcode is OpCode.MUL]
    assert len(muls) == 6
    assert {"x1", "y1", "u1", "c"} <= block.live_out
    allocate_result = allocate_block(block, register_count=4)
    assert allocate_result.total_energy > 0


def test_fft_butterfly_sizes():
    from repro.exceptions import WorkloadError
    from repro.workloads.dsp_kernels import fft_butterfly

    block = fft_butterfly(stages=2)
    assert block.name == "fft4"
    # 4 outputs x 2 components live out.
    assert len(block.live_out) == 8
    with pytest.raises(WorkloadError):
        fft_butterfly(stages=0)


def test_fft_butterfly_simulates_correctly():
    import random as _random

    from repro.codegen import lower, verify_program
    from repro.workloads.dsp_kernels import fft_butterfly

    block = fft_butterfly(stages=2)
    result = allocate_block(block, register_count=6)
    program = lower(result)
    rng = _random.Random(77)
    inputs = {
        op.output: rng.getrandbits(16)
        for op in block
        if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST)
    }
    verify_program(program, block, result.allocation, inputs)


def test_lattice_filter_sections():
    from repro.exceptions import WorkloadError
    from repro.workloads.dsp_kernels import lattice_filter

    block = lattice_filter(3)
    muls = [op for op in block if op.opcode is OpCode.MUL]
    assert len(muls) == 6  # two per section
    assert len(block.live_out) == 4  # 3 g-states + final f
    with pytest.raises(WorkloadError):
        lattice_filter(0)


def test_matmul2_structure():
    from repro.workloads.dsp_kernels import matmul2

    block = matmul2()
    muls = [op for op in block if op.opcode is OpCode.MUL]
    adds = [op for op in block if op.opcode is OpCode.ADD]
    assert len(muls) == 8
    assert len(adds) == 4
    assert len(block.live_out) == 4
