"""Tests for the random workload generators."""

import random

import pytest

from repro.exceptions import WorkloadError
from repro.scheduling import list_schedule
from repro.workloads.random_blocks import random_dfg, random_lifetimes


def test_random_lifetimes_shape():
    rng = random.Random(1)
    lifetimes = random_lifetimes(rng, count=20, horizon=12)
    assert len(lifetimes) == 20
    for lt in lifetimes.values():
        assert 1 <= lt.start < lt.end <= 13
        if lt.live_out:
            assert lt.end == 13


def test_random_lifetimes_reproducible():
    a = random_lifetimes(random.Random(7), 10, 10)
    b = random_lifetimes(random.Random(7), 10, 10)
    assert {n: (lt.start, lt.read_times) for n, lt in a.items()} == {
        n: (lt.start, lt.read_times) for n, lt in b.items()
    }


def test_random_lifetimes_multi_read():
    rng = random.Random(3)
    lifetimes = random_lifetimes(
        rng, count=40, horizon=15, multi_read_fraction=1.0
    )
    assert any(lt.read_count > 1 for lt in lifetimes.values())


def test_random_lifetimes_traced():
    lifetimes = random_lifetimes(
        random.Random(5), 5, 10, traced=True, trace_samples=8
    )
    assert all(len(lt.variable.trace) == 8 for lt in lifetimes.values())


def test_random_lifetimes_validation():
    rng = random.Random(0)
    with pytest.raises(WorkloadError):
        random_lifetimes(rng, 0, 10)
    with pytest.raises(WorkloadError):
        random_lifetimes(rng, 5, 1)


def test_random_dfg_schedulable():
    rng = random.Random(9)
    block = random_dfg(rng, operations=25)
    schedule = list_schedule(block)
    schedule.validate()
    assert len(block) >= 25


def test_random_dfg_no_dead_variables():
    rng = random.Random(13)
    block = random_dfg(rng, operations=15)
    for name in block.variable_names():
        assert not block.is_dead(name), name


def test_random_dfg_validation():
    rng = random.Random(0)
    with pytest.raises(WorkloadError):
        random_dfg(rng, operations=0)
    with pytest.raises(WorkloadError):
        random_dfg(rng, inputs=1)


# ---------------------------------------------------------------------------
# Stable seed derivation (the fuzz harness's reproducibility contract).
# ---------------------------------------------------------------------------

def test_derive_seed_is_stable():
    from repro.workloads.random_blocks import derive_seed

    # CRC-32 based: identical across processes and platforms, unlike
    # Python's salted hash().  These exact values are part of the
    # contract — changing them invalidates committed fuzz reports.
    assert derive_seed(0, "fuzz-case", 0) == derive_seed(0, "fuzz-case", 0)
    assert derive_seed(0, "fuzz-case", 0) != derive_seed(0, "fuzz-case", 1)
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_spawn_rng_independent_streams():
    from repro.workloads.random_blocks import spawn_rng

    a1 = [spawn_rng(9, "x").random() for _ in range(3)]
    a2 = [spawn_rng(9, "x").random() for _ in range(3)]
    b = [spawn_rng(9, "y").random() for _ in range(3)]
    assert a1 == a2
    assert a1 != b


def test_spawn_rng_reproduces_lifetimes():
    from repro.workloads.random_blocks import random_lifetimes, spawn_rng

    first = random_lifetimes(spawn_rng(3, "case", 7), count=5, horizon=8)
    second = random_lifetimes(spawn_rng(3, "case", 7), count=5, horizon=8)
    assert first == second
