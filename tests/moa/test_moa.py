"""Tests for multiple offset assignment."""

import random

import pytest

from repro.exceptions import AllocationError
from repro.moa.cost import CostWeights, sequence_cost
from repro.moa.moa import moa_assign, moa_cost, moa_optimal_partition
from repro.moa.soa import soa_liao


def test_single_ar_equals_soa():
    sequence = list("abacbdcd")
    result = moa_assign(sequence, 1)
    assert result.cost == pytest.approx(
        sequence_cost(sequence, soa_liao(sequence))
    )
    assert result.partition[0] == {"a", "b", "c", "d"}


def test_more_ars_never_hurt():
    rng = random.Random(11)
    for _ in range(8):
        variables = "abcdef"[: rng.randint(4, 6)]
        sequence = [rng.choice(variables) for _ in range(16)]
        costs = [moa_assign(sequence, k).cost for k in (1, 2, 3)]
        assert costs[1] <= costs[0] + 1e-9
        assert costs[2] <= costs[1] + 1e-9


def test_two_interleaved_streams_split_cleanly():
    # The streams {a,c} and {b,d} interleave: one AR pays on (almost)
    # every transition, two ARs serve each stream with pure
    # auto-increment (subsequences a,c,a,c,... and b,d,b,d,...).
    sequence = ["a", "c", "b", "d"] * 4
    one = moa_assign(sequence, 1)
    two = moa_assign(sequence, 2)
    assert two.cost < one.cost
    assert two.cost == 0.0
    assert two.register_of("a") == two.register_of("c")
    assert two.register_of("b") == two.register_of("d")


def test_heuristic_close_to_optimal_on_small_instances():
    rng = random.Random(3)
    for _ in range(6):
        variables = "abcde"[: rng.randint(3, 5)]
        sequence = [rng.choice(variables) for _ in range(12)]
        heuristic = moa_assign(sequence, 2).cost
        exact = moa_optimal_partition(sequence, 2)
        assert heuristic >= exact - 1e-9
        assert heuristic <= exact + 2 * CostWeights().update_cost()


def test_weights_scale_cost():
    sequence = ["a", "c", "a", "c"]
    offsets_cost = moa_cost(
        sequence, [{"a", "c"}], CostWeights(cycles=2, words=0, energy=0)
    )
    base = moa_cost(
        sequence, [{"a", "c"}], CostWeights(cycles=1, words=0, energy=0)
    )
    assert offsets_cost == pytest.approx(2 * base)


def test_register_of_unknown_raises():
    result = moa_assign(["a", "b"], 2)
    with pytest.raises(AllocationError):
        result.register_of("zzz")


def test_zero_ars_rejected():
    with pytest.raises(AllocationError):
        moa_assign(["a"], 0)


def test_empty_sequence():
    result = moa_assign([], 2)
    assert result.cost == 0.0
