"""Tests for access-sequence extraction from allocations."""

from repro.core import AllocationProblem, allocate
from repro.energy import StaticEnergyModel
from repro.moa.access import access_sequence
from tests.conftest import make_lifetime


def test_all_memory_sequence_order():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
    }
    allocation = allocate(AllocationProblem(lifetimes, 0, 4))
    sequence = access_sequence(allocation)
    # writes at their steps, reads at theirs: a@1W, b@2W, a@3R, b@4R.
    assert sequence == ["a", "b", "a", "b"]


def test_register_variables_absent():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
    }
    allocation = allocate(AllocationProblem(lifetimes, 2, 4))
    assert access_sequence(allocation) == []


def test_sequence_length_matches_report():
    lifetimes = {
        "a": make_lifetime("a", 1, (3, 5)),
        "b": make_lifetime("b", 2, 4),
        "c": make_lifetime("c", 3, 6),
    }
    allocation = allocate(
        AllocationProblem(lifetimes, 1, 6, energy_model=StaticEnergyModel())
    )
    sequence = access_sequence(allocation)
    assert len(sequence) == allocation.report.mem_accesses


def test_reads_precede_writes_within_a_step():
    # a read at step 3, d written at step 3: the read comes first.
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "d": make_lifetime("d", 3, 5),
    }
    allocation = allocate(AllocationProblem(lifetimes, 0, 5))
    sequence = access_sequence(allocation)
    assert sequence == ["a", "a", "d", "d"]  # aW@1? see below

    # Explicit: step 1 -> write a; step 3 -> read a then write d; step 5
    # -> read d.
    assert sequence[1] == "a" and sequence[2] == "d"
