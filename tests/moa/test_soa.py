"""Tests for simple offset assignment."""

import random

import pytest

from repro.exceptions import AllocationError
from repro.moa.access import access_graph
from repro.moa.cost import CostWeights, sequence_cost, transition_cost
from repro.moa.soa import soa_liao, soa_naive, soa_optimal


def test_transition_cost():
    assert transition_cost(3, 4) == 0
    assert transition_cost(4, 3) == 0
    assert transition_cost(3, 3) == 0
    assert transition_cost(3, 5) == 1


def test_sequence_cost_counts_jumps():
    offsets = {"a": 0, "b": 1, "c": 5}
    weights = CostWeights(cycles=1.0, words=0.0, energy=0.0)
    assert sequence_cost(["a", "b", "c", "b"], offsets, weights) == 2.0


def test_sequence_cost_unplaced_variable():
    with pytest.raises(AllocationError):
        sequence_cost(["a", "b"], {"a": 0})


def test_access_graph_counts_adjacencies():
    graph = access_graph(["a", "b", "a", "b", "c", "c"])
    assert graph[frozenset(("a", "b"))] == 3
    assert graph[frozenset(("b", "c"))] == 1
    assert frozenset(("c",)) not in graph  # self-transitions free


def test_liao_handles_classic_example():
    # The textbook example: frequent a-b adjacency must be covered.
    sequence = list("ababcadd")
    offsets = soa_liao(sequence)
    assert abs(offsets["a"] - offsets["b"]) == 1
    liao_cost = sequence_cost(sequence, offsets)
    naive_cost = sequence_cost(sequence, soa_naive(sequence))
    assert liao_cost <= naive_cost


def test_offsets_are_a_permutation():
    sequence = list("abcdeabce")
    offsets = soa_liao(sequence)
    assert sorted(offsets.values()) == list(range(5))


def test_optimal_no_worse_than_liao():
    rng = random.Random(5)
    for _ in range(10):
        variables = "abcdef"[: rng.randint(3, 6)]
        sequence = [rng.choice(variables) for _ in range(14)]
        exact = sequence_cost(sequence, soa_optimal(sequence))
        liao = sequence_cost(sequence, soa_liao(sequence))
        naive = sequence_cost(sequence, soa_naive(sequence))
        assert exact <= liao + 1e-9
        assert liao <= naive + 1e-9


def test_optimal_limit():
    sequence = [f"v{i}" for i in range(12)]
    with pytest.raises(AllocationError):
        soa_optimal(sequence)


def test_empty_and_single():
    assert soa_liao([]) == {}
    assert soa_optimal([]) == {}
    assert soa_liao(["x", "x"]) == {"x": 0}
    assert sequence_cost(["x", "x"], {"x": 0}) == 0.0


def test_zero_cost_when_sequence_is_a_walk():
    sequence = ["a", "b", "c", "b", "a"]
    offsets = soa_liao(sequence)
    assert sequence_cost(sequence, offsets) == 0.0
