"""End-to-end integration tests across all subsystems."""

import random

import pytest

from repro import (
    ActivityEnergyModel,
    AllocationProblem,
    MemoryConfig,
    StaticEnergyModel,
    allocate,
    allocate_block,
    elliptic_wave_filter,
    extract_lifetimes,
    fir_filter,
    list_schedule,
    reallocate_memory,
)
from repro.analysis import compare_allocators, improvement_factor
from repro.scheduling import ResourceSet
from repro.workloads import rsp_schedule


def test_full_pipeline_on_ewf():
    rng = random.Random(42)
    block = elliptic_wave_filter(rng)
    result = allocate_block(
        block,
        register_count=6,
        resources=ResourceSet.typical_dsp(),
        energy_model=ActivityEnergyModel(),
    )
    allocation = result.allocation
    # All invariants at once: accounting identity, chain validity,
    # register budget, second-pass consistency.
    assert allocation.report.total_energy == pytest.approx(
        allocation.objective
    )
    assert allocation.registers_used <= 6
    if result.memory_layout:
        assert (
            result.memory_layout.address_count == allocation.address_count
        )


def test_flow_beats_all_baselines_on_dsp_kernels():
    rng = random.Random(7)
    for block in (fir_filter(8, rng), elliptic_wave_filter(rng)):
        schedule = list_schedule(block)
        lifetimes = extract_lifetimes(schedule)
        comparison = compare_allocators(
            lifetimes,
            schedule.length,
            4,
            ActivityEnergyModel(),
            graph_style="all_pairs",
            split_at_reads=False,
        )
        best = comparison.best_baseline()
        assert comparison.flow.energy <= best.energy + 1e-9


def test_headline_improvement_range_on_kernels():
    """The paper claims 1.4-2.5x over previous (two-phase) research; our
    kernels should land in a comparable band against the paper-faithful
    two-phase baseline."""
    rng = random.Random(3)
    factors = []
    for block in (fir_filter(8, rng), elliptic_wave_filter(rng)):
        schedule = list_schedule(block)
        lifetimes = extract_lifetimes(schedule)
        comparison = compare_allocators(
            lifetimes, schedule.length, 4, ActivityEnergyModel()
        )
        factors.append(comparison.improvement_over("two-phase"))
    assert all(f >= 1.0 for f in factors)
    assert max(f for f in factors) > 1.2


def test_restricted_memory_end_to_end():
    schedule = rsp_schedule()
    voltages = {1: 5.0, 2: 3.16, 4: 2.19}
    objectives = {}
    for divisor, voltage in voltages.items():
        problem = AllocationProblem.from_schedule(
            schedule,
            register_count=16,
            energy_model=StaticEnergyModel().with_voltages(voltage, 5.0),
            memory=MemoryConfig(divisor=divisor, voltage=voltage),
        )
        allocation = allocate(problem)
        objectives[divisor] = allocation.objective
        layout = reallocate_memory(allocation)
        assert set(layout.addresses) == set(allocation.memory_addresses)
    assert objectives[4] < objectives[2] < objectives[1]


def test_package_version():
    import repro

    assert repro.__version__
