"""Tests for flow path decomposition."""

import pytest

from repro.exceptions import GraphError
from repro.flow import (
    FlowNetwork,
    decompose_into_paths,
    solve_min_cost_flow,
)
from repro.flow.graph import FlowResult


def test_single_path():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_arc("a", "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 1)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 1
    assert [arc.head for arc in paths[0]] == ["a", "t"]


def test_value_many_paths():
    net = FlowNetwork()
    for mid in ("a", "b", "c"):
        net.add_arc("s", mid, capacity=1)
        net.add_arc(mid, "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 3)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 3
    mids = {path[0].head for path in paths}
    assert mids == {"a", "b", "c"}


def test_shared_arc_multi_unit():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2)
    net.add_arc("a", "t", capacity=2)
    result = solve_min_cost_flow(net, "s", "t", 2)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 2
    assert all(len(p) == 2 for p in paths)


def test_zero_flow_empty():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 0)
    assert decompose_into_paths(result, "s", "t") == []


def test_conservation_violation_raises():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_arc("a", "t", capacity=1)
    bad = FlowResult(net, [1, 0], 1)
    with pytest.raises(GraphError):
        decompose_into_paths(bad, "s", "t")


def test_paths_preserve_flow_counts():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=0.0)
    net.add_arc("s", "b", capacity=1, cost=0.0)
    net.add_arc("a", "t", capacity=1, cost=0.0)
    net.add_arc("a", "b", capacity=1, cost=0.0)
    net.add_arc("b", "t", capacity=2, cost=0.0)
    result = solve_min_cost_flow(net, "s", "t", 3)
    paths = decompose_into_paths(result, "s", "t")
    used: dict[int, int] = {}
    for path in paths:
        for arc in path:
            used[arc.index] = used.get(arc.index, 0) + 1
    for arc in net.arcs:
        assert used.get(arc.index, 0) == result.flow(arc)
