"""Tests for flow path decomposition."""

import pytest

from repro.exceptions import GraphError
from repro.flow import (
    FlowNetwork,
    decompose_into_paths,
    solve_min_cost_flow,
)
from repro.flow.graph import FlowResult


def test_single_path():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_arc("a", "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 1)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 1
    assert [arc.head for arc in paths[0]] == ["a", "t"]


def test_value_many_paths():
    net = FlowNetwork()
    for mid in ("a", "b", "c"):
        net.add_arc("s", mid, capacity=1)
        net.add_arc(mid, "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 3)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 3
    mids = {path[0].head for path in paths}
    assert mids == {"a", "b", "c"}


def test_shared_arc_multi_unit():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2)
    net.add_arc("a", "t", capacity=2)
    result = solve_min_cost_flow(net, "s", "t", 2)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 2
    assert all(len(p) == 2 for p in paths)


def test_zero_flow_empty():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=1)
    result = solve_min_cost_flow(net, "s", "t", 0)
    assert decompose_into_paths(result, "s", "t") == []


def test_conservation_violation_raises():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_arc("a", "t", capacity=1)
    bad = FlowResult(net, [1, 0], 1)
    with pytest.raises(GraphError):
        decompose_into_paths(bad, "s", "t")


def test_paths_preserve_flow_counts():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=0.0)
    net.add_arc("s", "b", capacity=1, cost=0.0)
    net.add_arc("a", "t", capacity=1, cost=0.0)
    net.add_arc("a", "b", capacity=1, cost=0.0)
    net.add_arc("b", "t", capacity=2, cost=0.0)
    result = solve_min_cost_flow(net, "s", "t", 3)
    paths = decompose_into_paths(result, "s", "t")
    used: dict[int, int] = {}
    for path in paths:
        for arc in path:
            used[arc.index] = used.get(arc.index, 0) + 1
    for arc in net.arcs:
        assert used.get(arc.index, 0) == result.flow(arc)


# ---------------------------------------------------------------------------
# Lower-bounded and degenerate networks.
# ---------------------------------------------------------------------------

def test_decompose_with_nonzero_lower_bounds():
    from repro.flow.lower_bounds import solve_with_lower_bounds

    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=9.0, lower=1)
    net.add_arc("a", "t", capacity=1, cost=0.0, lower=1)
    net.add_arc("s", "b", capacity=1, cost=1.0)
    net.add_arc("b", "t", capacity=1, cost=0.0)
    result = solve_with_lower_bounds(net, "s", "t", 2)
    # The expensive path is forced by its lower bound despite the cost.
    assert result.flows == [1, 1, 1, 1]
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 2
    assert {path[0].head for path in paths} == {"a", "b"}


def test_decompose_forced_only_path():
    from repro.flow.lower_bounds import solve_with_lower_bounds

    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0, lower=2)
    net.add_arc("a", "t", capacity=2, cost=1.0, lower=2)
    result = solve_with_lower_bounds(net, "s", "t", 2)
    paths = decompose_into_paths(result, "s", "t")
    assert len(paths) == 2
    assert all([arc.head for arc in p] == ["a", "t"] for p in paths)


def test_decompose_empty_problem_network():
    # An instance with no variables at all still builds and decomposes:
    # all R units ride the bypass arc, giving R trivial s->t paths.
    from repro.core.network_builder import SINK, SOURCE, build_network
    from repro.core.problem import AllocationProblem
    from repro.flow.lower_bounds import solve

    problem = AllocationProblem({}, register_count=3, horizon=4)
    built = build_network(problem)
    result = solve(built.network, SOURCE, SINK, 3)
    paths = decompose_into_paths(result, SOURCE, SINK)
    assert len(paths) == 3
    assert all(len(path) == 1 for path in paths)


def test_decompose_single_variable_network():
    from repro.core.network_builder import SINK, SOURCE, build_network
    from repro.core.problem import AllocationProblem
    from repro.flow.lower_bounds import solve
    from tests.conftest import make_lifetime

    problem = AllocationProblem(
        {"a": make_lifetime("a", 1, (3,))}, register_count=1, horizon=4
    )
    built = build_network(problem)
    result = solve(built.network, SOURCE, SINK, 1)
    paths = decompose_into_paths(result, SOURCE, SINK)
    assert len(paths) == 1
    visited = {arc.head for arc in paths[0]}
    # The single unit either carries the variable or rides the bypass;
    # with the paper's costs registers always win.
    assert any(
        isinstance(node, tuple) and node[1] == "a" for node in visited
    )
