"""Unit tests for the lower-bound transformation."""

import pytest

from repro.exceptions import InfeasibleFlowError
from repro.flow import (
    FlowNetwork,
    check_flow,
    solve,
    solve_with_lower_bounds,
)


def test_dispatch_without_lower_bounds():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=3, cost=1.0)
    result = solve(net, "s", "t", 2)
    assert result.cost == 2.0


def test_forced_expensive_arc():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=5.0)
    net.add_arc("s", "b", capacity=2, cost=0.0)
    net.add_arc("a", "t", capacity=2, cost=0.0, lower=1)
    net.add_arc("b", "t", capacity=2, cost=0.0)
    result = solve_with_lower_bounds(net, "s", "t", 2)
    check_flow(result, "s", "t", 2)
    # Without the bound the optimum would route both units via b (cost 0);
    # the bound forces one unit over the 5-cost arc.
    assert result.cost == pytest.approx(5.0)
    forced = net.arcs[2]
    assert result.flow(forced) >= 1


def test_bounds_respected_exactly():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=3, cost=0.0)
    net.add_arc("a", "t", capacity=3, cost=0.0, lower=2)
    result = solve_with_lower_bounds(net, "s", "t", 3)
    check_flow(result, "s", "t", 3)
    assert result.flow(net.arcs[1]) == 3


def test_infeasible_lower_bound():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=0.0)
    net.add_arc("a", "t", capacity=2, cost=0.0, lower=2)
    # Only 1 unit can reach a, but the arc demands 2.
    with pytest.raises(InfeasibleFlowError):
        solve_with_lower_bounds(net, "s", "t", 1)


def test_lower_bound_exceeding_flow_value_infeasible():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=5, cost=0.0, lower=3)
    with pytest.raises(InfeasibleFlowError):
        solve_with_lower_bounds(net, "s", "t", 2)


def test_parallel_bounded_arcs():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=0.0)
    net.add_arc("a", "t", capacity=1, cost=1.0, lower=1)
    net.add_arc("a", "t", capacity=1, cost=9.0, lower=1)
    result = solve_with_lower_bounds(net, "s", "t", 2)
    check_flow(result, "s", "t", 2)
    assert result.cost == pytest.approx(10.0)


def test_optimality_with_negative_costs_and_bounds():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=0.0)
    net.add_arc("s", "b", capacity=2, cost=0.0)
    net.add_arc("a", "t", capacity=2, cost=-4.0)
    net.add_arc("b", "t", capacity=2, cost=1.0, lower=1)
    result = solve_with_lower_bounds(net, "s", "t", 3)
    check_flow(result, "s", "t", 3)
    # Best: 2 units at -4, 1 forced unit at +1.
    assert result.cost == pytest.approx(-7.0)
