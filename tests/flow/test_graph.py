"""Unit tests for the FlowNetwork container."""

import pytest

from repro.exceptions import GraphError
from repro.flow import FlowNetwork


def test_add_arc_registers_endpoints():
    net = FlowNetwork()
    arc = net.add_arc("u", "v", capacity=3, cost=1.5)
    assert net.has_node("u") and net.has_node("v")
    assert arc.capacity == 3
    assert arc.cost == 1.5
    assert arc.lower == 0
    assert net.num_nodes == 2
    assert net.num_arcs == 1


def test_add_node_idempotent():
    net = FlowNetwork()
    net.add_node("x")
    net.add_node("x")
    assert net.num_nodes == 1


def test_node_index_dense_and_stable():
    net = FlowNetwork()
    for name in ("a", "b", "c"):
        net.add_node(name)
    assert [net.node_index(n) for n in ("a", "b", "c")] == [0, 1, 2]


def test_parallel_arcs_allowed():
    net = FlowNetwork()
    net.add_arc("u", "v", capacity=1, cost=1.0)
    net.add_arc("u", "v", capacity=1, cost=2.0)
    assert net.num_arcs == 2
    assert len(net.arcs_from("u")) == 2


def test_self_loop_rejected():
    net = FlowNetwork()
    with pytest.raises(GraphError):
        net.add_arc("u", "u", capacity=1)


def test_negative_lower_bound_rejected():
    net = FlowNetwork()
    with pytest.raises(GraphError):
        net.add_arc("u", "v", capacity=1, lower=-1)


def test_capacity_below_lower_rejected():
    net = FlowNetwork()
    with pytest.raises(GraphError):
        net.add_arc("u", "v", capacity=1, lower=2)


def test_non_integer_bounds_rejected():
    net = FlowNetwork()
    with pytest.raises(GraphError):
        net.add_arc("u", "v", capacity=1.5)  # type: ignore[arg-type]


def test_adjacency_queries():
    net = FlowNetwork()
    a1 = net.add_arc("u", "v", capacity=1)
    a2 = net.add_arc("u", "w", capacity=1)
    a3 = net.add_arc("w", "v", capacity=1)
    assert net.arcs_from("u") == (a1, a2)
    assert net.arcs_into("v") == (a1, a3)
    assert net.arcs_from("v") == ()


def test_has_lower_bounds():
    net = FlowNetwork()
    net.add_arc("u", "v", capacity=2)
    assert not net.has_lower_bounds()
    net.add_arc("v", "w", capacity=2, lower=1)
    assert net.has_lower_bounds()


def test_topological_order_acyclic():
    net = FlowNetwork()
    net.add_arc("a", "b", capacity=1)
    net.add_arc("b", "c", capacity=1)
    net.add_arc("a", "c", capacity=1)
    order = net.topological_order()
    assert order is not None
    assert order.index("a") < order.index("b") < order.index("c")


def test_topological_order_cyclic_returns_none():
    net = FlowNetwork()
    net.add_arc("a", "b", capacity=1)
    net.add_arc("b", "a", capacity=1)
    assert net.topological_order() is None


def test_iteration_yields_arcs_in_insertion_order():
    net = FlowNetwork()
    arcs = [net.add_arc("a", "b", capacity=1) for _ in range(3)]
    assert list(net) == arcs
    assert [a.index for a in net] == [0, 1, 2]
