"""Cycle-cancelling solver tests: standalone behaviour plus agreement
with the successive-shortest-path solver on random instances."""

import random

import pytest

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow import (
    FlowNetwork,
    check_flow,
    solve_by_cycle_canceling,
    solve_min_cost_flow,
)


def test_simple_instance():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("a", "t", capacity=2, cost=1.0)
    result = solve_by_cycle_canceling(net, "s", "t", 2)
    check_flow(result, "s", "t", 2)
    assert result.cost == pytest.approx(4.0)


def test_improves_initial_flow():
    # BFS establishes s-a-t first; cancelling must reroute to the cheap arc.
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=0.0)
    net.add_arc("a", "t", capacity=1, cost=10.0)
    net.add_arc("a", "b", capacity=1, cost=0.0)
    net.add_arc("b", "t", capacity=1, cost=1.0)
    result = solve_by_cycle_canceling(net, "s", "t", 1)
    assert result.cost == pytest.approx(1.0)


def test_infeasible():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=1, cost=0.0)
    with pytest.raises(InfeasibleFlowError):
        solve_by_cycle_canceling(net, "s", "t", 2)


def test_rejects_lower_bounds():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=2, lower=1)
    with pytest.raises(GraphError):
        solve_by_cycle_canceling(net, "s", "t", 1)


def _random_dag(rng: random.Random, nodes: int, extra_arcs: int) -> FlowNetwork:
    """Random layered DAG with integer costs (possibly negative)."""
    net = FlowNetwork()
    names = ["s"] + [f"n{i}" for i in range(nodes)] + ["t"]
    for a, b in zip(names, names[1:]):  # guarantee an s-t path
        net.add_arc(a, b, capacity=rng.randint(1, 4), cost=rng.randint(-3, 6))
    for _ in range(extra_arcs):
        i = rng.randrange(len(names) - 1)
        j = rng.randrange(i + 1, len(names))
        net.add_arc(
            names[i],
            names[j],
            capacity=rng.randint(1, 4),
            cost=rng.randint(-3, 6),
        )
    return net


@pytest.mark.parametrize("seed", range(20))
def test_agrees_with_ssp_on_random_dags(seed):
    rng = random.Random(seed)
    net = _random_dag(rng, nodes=rng.randint(2, 7), extra_arcs=rng.randint(2, 12))
    from repro.flow.ssp import max_flow_value

    limit = max_flow_value(net, "s", "t")
    if limit == 0:
        pytest.skip("degenerate instance")
    value = rng.randint(1, limit)
    ssp = solve_min_cost_flow(net, "s", "t", value)
    cc = solve_by_cycle_canceling(net, "s", "t", value)
    check_flow(ssp, "s", "t", value)
    check_flow(cc, "s", "t", value)
    assert ssp.cost == pytest.approx(cc.cost, abs=1e-6)
