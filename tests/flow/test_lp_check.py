"""LP cross-check: the combinatorial solvers against scipy's HiGHS.

Also verifies the paper's integrality remark: with integral capacities
and flow value the LP optimum equals the integral optimum.
"""

import random

import pytest

from repro.exceptions import InfeasibleFlowError
from repro.flow import FlowNetwork, max_flow_value, solve_with_lower_bounds
from repro.flow.lp_check import lp_flows, lp_min_cost


def _random_dag(rng: random.Random) -> FlowNetwork:
    net = FlowNetwork()
    names = ["s"] + [f"n{i}" for i in range(rng.randint(2, 6))] + ["t"]
    for a, b in zip(names, names[1:]):
        net.add_arc(a, b, capacity=rng.randint(1, 4), cost=rng.randint(-4, 6))
    for _ in range(rng.randint(2, 10)):
        i = rng.randrange(len(names) - 1)
        j = rng.randrange(i + 1, len(names))
        lower = rng.choice((0, 0, 1))
        net.add_arc(
            names[i],
            names[j],
            capacity=rng.randint(max(1, lower), 4),
            cost=rng.randint(-4, 6),
            lower=lower,
        )
    return net


@pytest.mark.parametrize("seed", range(15))
def test_solver_matches_lp_optimum(seed):
    rng = random.Random(seed)
    net = _random_dag(rng)
    limit = max_flow_value(net, "s", "t")
    if limit == 0:
        pytest.skip("degenerate instance")
    value = rng.randint(1, limit)
    try:
        combinatorial = solve_with_lower_bounds(net, "s", "t", value)
    except InfeasibleFlowError:
        with pytest.raises(InfeasibleFlowError):
            lp_min_cost(net, "s", "t", value)
        return
    assert combinatorial.cost == pytest.approx(
        lp_min_cost(net, "s", "t", value), abs=1e-6
    )


def test_lp_flow_vector_is_feasible():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("a", "t", capacity=2, cost=1.0)
    flows = lp_flows(net, "s", "t", 2)
    assert flows == pytest.approx([2.0, 2.0])


def test_lp_detects_infeasibility():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=1, cost=0.0)
    with pytest.raises(InfeasibleFlowError):
        lp_min_cost(net, "s", "t", 5)


def test_integrality_of_lp_on_allocation_network():
    """The LP relaxation of a figure-3 allocation network has an integral
    optimum (unimodularity) — the property the paper leans on."""
    from repro.core import AllocationProblem, build_network
    from repro.workloads import FIGURE3_HORIZON, figure3_lifetimes

    problem = AllocationProblem(figure3_lifetimes(), 1, FIGURE3_HORIZON)
    built = build_network(problem)
    flows = lp_flows(built.network, built.source, built.sink, 1)
    for value in flows:
        assert value == pytest.approx(round(value), abs=1e-6)
