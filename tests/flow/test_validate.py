"""Tests for the flow validator."""

import pytest

from repro.flow import FlowNetwork, check_flow, flow_cost
from repro.flow.graph import FlowResult
from repro.flow.validate import FlowValidationError


def net_and_flow():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("a", "t", capacity=2, cost=3.0)
    return net, FlowResult(net, [2, 2], 2)


def test_valid_flow_passes():
    net, result = net_and_flow()
    check_flow(result, "s", "t", 2)


def test_flow_cost_recomputation():
    net, result = net_and_flow()
    assert flow_cost(result) == pytest.approx(8.0)
    assert result.cost == pytest.approx(8.0)


def test_conservation_violation_detected():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2)
    net.add_arc("a", "t", capacity=2)
    bad = FlowResult(net, [2, 1], 2)
    with pytest.raises(FlowValidationError, match="conservation|receives"):
        check_flow(bad, "s", "t", 2)


def test_capacity_violation_detected():
    net, _ = net_and_flow()
    bad = FlowResult(net, [3, 3], 3)
    with pytest.raises(FlowValidationError, match="bounds"):
        check_flow(bad, "s", "t", 3)


def test_lower_bound_violation_detected():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=2, lower=1)
    bad = FlowResult(net, [0], 0)
    with pytest.raises(FlowValidationError, match="bounds"):
        check_flow(bad, "s", "t", 0)


def test_wrong_value_detected():
    net, result = net_and_flow()
    with pytest.raises(FlowValidationError, match="ships|receives"):
        check_flow(result, "s", "t", 1)


def test_non_integral_flow_detected():
    net, _ = net_and_flow()
    bad = FlowResult(net, [1.5, 1.5], 1)  # type: ignore[list-item]
    with pytest.raises(FlowValidationError, match="non-integral"):
        check_flow(bad, "s", "t", 1)


def test_wrong_vector_length_detected():
    net, result = net_and_flow()
    result.flows = [2]  # truncate after construction
    with pytest.raises(FlowValidationError, match="entries"):
        check_flow(result, "s", "t", 2)


# ---------------------------------------------------------------------------
# Lower-bounded and degenerate networks.
# ---------------------------------------------------------------------------

def test_valid_lower_bounded_flow_passes():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0, lower=1)
    net.add_arc("a", "t", capacity=2, cost=1.0, lower=1)
    check_flow(FlowResult(net, [1, 1], 1), "s", "t", 1)
    check_flow(FlowResult(net, [2, 2], 2), "s", "t", 2)


def test_solver_output_respects_lower_bounds():
    from repro.flow.lower_bounds import solve_with_lower_bounds

    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=5.0, lower=1)
    net.add_arc("a", "t", capacity=1, cost=5.0, lower=1)
    net.add_arc("s", "t", capacity=1, cost=0.0)
    result = solve_with_lower_bounds(net, "s", "t", 2)
    check_flow(result, "s", "t", 2)
    assert flow_cost(result) == pytest.approx(10.0)


def test_empty_network_zero_flow():
    net = FlowNetwork()
    net.add_node("s")
    net.add_node("t")
    check_flow(FlowResult(net, [], 0), "s", "t", 0)


def test_empty_problem_network_validates():
    from repro.core.network_builder import SINK, SOURCE, build_network
    from repro.core.problem import AllocationProblem
    from repro.flow.lower_bounds import solve

    problem = AllocationProblem({}, register_count=2, horizon=3)
    built = build_network(problem)
    result = solve(built.network, SOURCE, SINK, 2)
    check_flow(result, SOURCE, SINK, 2)


def test_single_variable_network_validates():
    from repro.core.network_builder import SINK, SOURCE, build_network
    from repro.core.problem import AllocationProblem
    from repro.flow.lower_bounds import solve
    from tests.conftest import make_lifetime

    problem = AllocationProblem(
        {"a": make_lifetime("a", 1, (2,), live_out=False)},
        register_count=1,
        horizon=3,
    )
    built = build_network(problem)
    result = solve(built.network, SOURCE, SINK, 1)
    check_flow(result, SOURCE, SINK, 1)
    assert result.value == 1
