"""Unit tests for the successive-shortest-path solver."""

import pytest

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow import (
    FlowNetwork,
    check_flow,
    max_flow_value,
    solve_min_cost_flow,
)


def diamond() -> FlowNetwork:
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("s", "b", capacity=2, cost=4.0)
    net.add_arc("a", "t", capacity=1, cost=1.0)
    net.add_arc("a", "b", capacity=1, cost=1.0)
    net.add_arc("b", "t", capacity=2, cost=1.0)
    return net


def test_single_arc():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=5, cost=2.0)
    result = solve_min_cost_flow(net, "s", "t", 3)
    assert result.flows == [3]
    assert result.cost == 6.0


def test_prefers_cheap_path():
    result = solve_min_cost_flow(diamond(), "s", "t", 1)
    check_flow(result, "s", "t", 1)
    assert result.cost == pytest.approx(2.0)  # s->a->t


def test_fills_paths_in_cost_order():
    result = solve_min_cost_flow(diamond(), "s", "t", 3)
    check_flow(result, "s", "t", 3)
    # unit 1: s-a-t (2), unit 2: s-a-b-t (3), unit 3: s-b-t (5)
    assert result.cost == pytest.approx(10.0)


def test_negative_costs_on_dag():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=5.0)
    net.add_arc("s", "b", capacity=1, cost=0.0)
    net.add_arc("a", "t", capacity=1, cost=-10.0)
    net.add_arc("b", "t", capacity=1, cost=0.0)
    result = solve_min_cost_flow(net, "s", "t", 1)
    assert result.cost == pytest.approx(-5.0)


def test_zero_flow_returns_empty():
    result = solve_min_cost_flow(diamond(), "s", "t", 0)
    assert result.value == 0
    assert all(f == 0 for f in result.flows)
    assert result.cost == 0.0


def test_infeasible_raises():
    with pytest.raises(InfeasibleFlowError):
        solve_min_cost_flow(diamond(), "s", "t", 4)


def test_unreachable_sink_raises():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_node("t")
    with pytest.raises(InfeasibleFlowError):
        solve_min_cost_flow(net, "s", "t", 1)


def test_unknown_endpoint_raises():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    with pytest.raises(GraphError):
        solve_min_cost_flow(net, "s", "zzz", 1)


def test_negative_flow_value_rejected():
    with pytest.raises(GraphError):
        solve_min_cost_flow(diamond(), "s", "t", -1)


def test_lower_bounds_rejected_here():
    net = FlowNetwork()
    net.add_arc("s", "t", capacity=2, lower=1)
    with pytest.raises(GraphError):
        solve_min_cost_flow(net, "s", "t", 1)


def test_solver_handles_cyclic_network():
    # Cycle with positive total cost is fine (Bellman-Ford fallback).
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("a", "b", capacity=2, cost=1.0)
    net.add_arc("b", "a", capacity=2, cost=1.0)
    net.add_arc("b", "t", capacity=2, cost=1.0)
    result = solve_min_cost_flow(net, "s", "t", 2)
    check_flow(result, "s", "t", 2)
    assert result.cost == pytest.approx(6.0)


def test_negative_cycle_detected():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=0.0)
    net.add_arc("a", "b", capacity=1, cost=-2.0)
    net.add_arc("b", "a", capacity=1, cost=1.0)
    net.add_arc("b", "t", capacity=1, cost=0.0)
    with pytest.raises(GraphError):
        solve_min_cost_flow(net, "s", "t", 1)


def test_integrality():
    result = solve_min_cost_flow(diamond(), "s", "t", 3)
    assert all(isinstance(f, int) for f in result.flows)


def test_max_flow_value():
    assert max_flow_value(diamond(), "s", "t") == 3


def test_max_flow_no_path():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1)
    net.add_node("t")
    assert max_flow_value(net, "s", "t") == 0


def test_result_helpers():
    result = solve_min_cost_flow(diamond(), "s", "t", 3)
    assert result.outflow("s") == 3
    assert result.inflow("t") == 3
    assert all(result.flow(arc) >= 0 for arc in result.network.arcs)
    assert {a.tail for a in result.saturated_arcs()} <= {"s", "a", "b"}
