"""Parity tests: the vectorized kernel against the per-object reference.

The struct-of-arrays kernel (``repro.flow.kernel``) and the preserved
per-arc-object solver (``repro.flow.reference``) share no search code, so
agreement on random layered DAGs — optimal cost, flow axioms, error
behaviour — pins the vectorization.  The incremental re-solve is checked
against a fresh cold solve after seeded cost perturbations.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.flow import check_flow, max_flow_value, solve_min_cost_flow
from repro.flow.graph import FlowNetwork
from repro.flow.kernel import FlowKernel
from repro.flow.reference import solve_min_cost_flow_reference


def random_network(seed: int, nodes: int = 10, arcs: int = 30) -> FlowNetwork:
    """Random layered DAG (arcs point to higher node ids: no cycles)."""
    rng = random.Random(seed)
    net = FlowNetwork()
    for u in range(nodes):
        net.add_node(u)
    for _ in range(arcs):
        tail = rng.randrange(nodes - 1)
        head = rng.randrange(tail + 1, nodes)
        net.add_arc(
            tail,
            head,
            capacity=rng.randint(1, 4),
            cost=float(rng.randint(-5, 9)),
        )
    return net


@pytest.mark.parametrize("seed", range(25))
def test_kernel_matches_reference_on_random_dags(seed):
    net = random_network(seed)
    source, sink = 0, net.num_nodes - 1
    limit = max_flow_value(net, source, sink)
    if limit == 0:
        return
    value = min(limit, 3)
    fast = solve_min_cost_flow(net, source, sink, value)
    slow = solve_min_cost_flow_reference(net, source, sink, value)
    check_flow(fast, source, sink, value)
    check_flow(slow, source, sink, value)
    assert fast.cost == pytest.approx(slow.cost, abs=1e-6)


@pytest.mark.parametrize("seed", range(25))
def test_kernel_flows_are_python_ints(seed):
    net = random_network(seed)
    limit = max_flow_value(net, 0, net.num_nodes - 1)
    if limit == 0:
        return
    result = solve_min_cost_flow(net, 0, net.num_nodes - 1, limit)
    assert all(isinstance(f, int) for f in result.flows)


@pytest.mark.parametrize("seed", range(15))
def test_reoptimize_matches_cold_solve_after_cost_perturbation(seed):
    net = random_network(seed, nodes=12, arcs=40)
    source, sink = 0, net.num_nodes - 1
    limit = max_flow_value(net, source, sink)
    if limit == 0:
        return
    value = min(limit, 3)
    kernel = FlowKernel(net)
    flows, potential, _ = kernel.solve(source, sink, value)

    rng = np.random.default_rng(seed)
    new_costs = net.arrays().costs + rng.integers(
        -3, 4, size=net.num_arcs
    ).astype(float)
    net.set_costs(new_costs)

    warm = FlowKernel(net, csr=kernel.csr)
    warm.load_flows(flows)
    warm_flows, new_potential, stats = warm.reoptimize(potential)

    cold = solve_min_cost_flow(net, source, sink, value)
    warm_cost = float(new_costs @ warm_flows)
    assert warm_cost == pytest.approx(cold.cost, abs=1e-6)
    check_flow(
        type(cold)(net, warm_flows.tolist(), value), source, sink, value
    )
    # The refreshed potentials certify the optimum: no active residual
    # arc has negative reduced cost.
    active = warm.res_cap > 0
    reduced = (
        warm.res_cost[active]
        + new_potential[warm.res_tail[active]]
        - new_potential[warm.res_head[active]]
    )
    assert reduced.min(initial=0.0) >= -1e-6


def test_reoptimize_is_noop_when_costs_unchanged():
    net = random_network(3)
    source, sink = 0, net.num_nodes - 1
    limit = max_flow_value(net, source, sink)
    value = min(limit, 3)
    kernel = FlowKernel(net)
    flows, potential, _ = kernel.solve(source, sink, value)
    warm = FlowKernel(net, csr=kernel.csr)
    warm.load_flows(flows)
    warm_flows, _, stats = warm.reoptimize(potential)
    assert np.array_equal(warm_flows, flows)
    assert stats.cancellations == 0


def test_negative_cycle_detected():
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=1, cost=0.0)
    net.add_arc("a", "b", capacity=1, cost=-5.0)
    net.add_arc("b", "a", capacity=1, cost=-5.0)
    net.add_arc("b", "t", capacity=1, cost=0.0)
    with pytest.raises(GraphError, match="negative-cost cycle"):
        solve_min_cost_flow(net, "s", "t", 1)


def test_csr_is_topology_only_and_reusable():
    net = random_network(7)
    kernel = FlowKernel(net)
    net.set_costs(net.arrays().costs * 2.0)
    rebuilt = FlowKernel(net, csr=kernel.csr)
    fresh = FlowKernel(net)
    assert np.array_equal(rebuilt.csr.order, fresh.csr.order)
    assert np.array_equal(rebuilt.csr.indptr, fresh.csr.indptr)
    assert np.array_equal(rebuilt.res_cost, fresh.res_cost)
