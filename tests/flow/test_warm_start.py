"""Warm-start cache behaviour: replay, incremental re-solve, cold fallback.

The contract under test (DESIGN.md "Performance model", THEORY.md §7):
warm starts change how much work a re-solve does, never its result.
Energies are compared against independent cold solves, warm allocations
are certificate-checked (``allocate(certify=True)``), and a capacity
change — a topology perturbation — must miss the cache and fall back to
a cold solve rather than reuse anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.exploration import explore_design_space
from repro.core.network_builder import build_network, recost_network
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate, solve_built
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.exceptions import GraphError, InfeasibleFlowError
from repro.flow.graph import FlowNetwork
from repro.flow.warm_start import WarmStartCache, solve_warm, topology_key
from repro.obs import trace as obs

from tests.conftest import make_lifetime


def diamond_network() -> FlowNetwork:
    net = FlowNetwork()
    net.add_arc("s", "a", capacity=2, cost=1.0)
    net.add_arc("s", "b", capacity=2, cost=4.0)
    net.add_arc("a", "t", capacity=2, cost=1.0)
    net.add_arc("b", "t", capacity=2, cost=1.0)
    return net


def sweep_lifetimes():
    return {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 2, 4),
        "d": make_lifetime("d", 4, 6),
    }


VOLTAGES = (5.0, 3.3, 2.4, 1.6, 1.2)


class TestSolveWarm:
    def test_cold_then_replay(self):
        net = diamond_network()
        cache = WarmStartCache()
        with obs.collect() as trace:
            first = solve_warm(net, "s", "t", 2, cache)
            second = solve_warm(net, "s", "t", 2, cache)
        assert first.flows == second.flows
        assert first.cost == second.cost == 4.0
        assert trace.counters["solver.warm_start.cold"] == 1
        assert trace.counters["solver.warm_start.replay"] == 1
        assert len(cache) == 1

    def test_incremental_matches_cold_after_cost_change(self):
        net = diamond_network()
        cache = WarmStartCache()
        solve_warm(net, "s", "t", 2, cache)
        # Make the a-route expensive: the optimum must reroute via b.
        net.set_costs(np.array([9.0, 4.0, 9.0, 1.0]))
        with obs.collect() as trace:
            warm = solve_warm(net, "s", "t", 2, cache)
        cold = solve_warm(net, "s", "t", 2, WarmStartCache())
        assert trace.counters["solver.warm_start.incremental"] == 1
        assert warm.cost == pytest.approx(cold.cost)
        assert warm.flows == cold.flows

    def test_capacity_change_falls_back_to_cold(self):
        """Topology perturbations must miss the cache, not corrupt it."""
        net = diamond_network()
        cache = WarmStartCache()
        solve_warm(net, "s", "t", 2, cache)
        shrunk = FlowNetwork()
        for arc in net.arcs:
            shrunk.add_arc(
                arc.tail,
                arc.head,
                capacity=1 if arc.tail == "s" and arc.head == "a" else 2,
                cost=arc.cost,
            )
        with obs.collect() as trace:
            result = solve_warm(shrunk, "s", "t", 2, cache)
        assert trace.counters["solver.warm_start.cold"] == 1
        assert "solver.warm_start.incremental" not in trace.counters
        assert "solver.warm_start.replay" not in trace.counters
        # 1 unit via a (1 + 1) plus 1 unit rerouted via b (4 + 1).
        assert result.cost == pytest.approx(7.0)
        assert len(cache) == 2

    def test_flow_value_is_part_of_the_key(self):
        net = diamond_network()
        assert topology_key(net, "s", "t", 1) != topology_key(net, "s", "t", 2)

    def test_cost_change_keeps_the_key(self):
        net = diamond_network()
        before = topology_key(net, "s", "t", 2)
        net.set_costs(np.array([9.0, 9.0, 9.0, 9.0]))
        assert topology_key(net, "s", "t", 2) == before

    def test_eviction_keeps_cache_bounded(self):
        cache = WarmStartCache(max_entries=1)
        net = diamond_network()
        solve_warm(net, "s", "t", 1, cache)
        solve_warm(net, "s", "t", 2, cache)
        assert len(cache) == 1


class TestWarmAllocations:
    @pytest.mark.parametrize("registers", (1, 2, 3))
    def test_voltage_sweep_energies_match_cold_and_certify(self, registers):
        """Seeded cost perturbations: warm == cold, certificate-checked."""
        cache = WarmStartCache()
        model = StaticEnergyModel()
        for voltage in VOLTAGES:
            problem = AllocationProblem(
                lifetimes=sweep_lifetimes(),
                register_count=registers,
                horizon=6,
                energy_model=model.with_voltages(voltage, 5.0),
                memory=MemoryConfig(divisor=2, voltage=voltage),
            )
            try:
                cold = allocate(problem, certify=True)
            except InfeasibleFlowError:
                with pytest.raises(InfeasibleFlowError):
                    allocate(problem, certify=True, warm_cache=cache)
                continue
            warm = allocate(problem, certify=True, warm_cache=cache)
            assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
            assert warm.residency == cold.residency

    def test_recost_plus_warm_sweep_uses_incremental_solves(self):
        cache = WarmStartCache()
        model = StaticEnergyModel()
        problems = [
            AllocationProblem(
                lifetimes=sweep_lifetimes(),
                register_count=2,
                horizon=6,
                energy_model=model.with_voltages(v, 5.0),
                memory=MemoryConfig(divisor=2, voltage=v),
            )
            for v in VOLTAGES
        ]
        with obs.collect() as trace:
            built = build_network(problems[0])
            energies = [solve_built(built, warm_cache=cache).objective]
            for problem in problems[1:]:
                built = recost_network(built, problem)
                energies.append(solve_built(built, warm_cache=cache).objective)
        assert trace.counters["network.builds"] == 1
        assert trace.counters["network.recosts"] == len(VOLTAGES) - 1
        assert trace.counters["solver.warm_start.cold"] == 1
        assert trace.counters["solver.warm_start.incremental"] == len(VOLTAGES) - 1
        colds = [allocate(p).objective for p in problems]
        assert energies == pytest.approx(colds, abs=1e-9)

    def test_recost_rejects_topology_changes(self):
        problem = AllocationProblem(
            lifetimes=sweep_lifetimes(),
            register_count=2,
            horizon=6,
            energy_model=StaticEnergyModel(),
            memory=MemoryConfig(),
        )
        built = build_network(problem)
        bigger = AllocationProblem(
            lifetimes=sweep_lifetimes(),
            register_count=3,
            horizon=6,
            energy_model=StaticEnergyModel(),
            memory=MemoryConfig(),
        )
        with pytest.raises(GraphError, match="identical topology"):
            recost_network(built, bigger)

    def test_exploration_warm_equals_cold(self):
        configs = tuple(
            MemoryConfig(divisor=2, voltage=v) for v in VOLTAGES
        )
        kwargs = dict(
            register_counts=(1, 2, 3),
            memory_configs=configs,
            energy_model=StaticEnergyModel(),
        )
        warm = explore_design_space(sweep_lifetimes(), 6, **kwargs)
        cold = explore_design_space(
            sweep_lifetimes(), 6, warm_start=False, **kwargs
        )
        assert len(warm.points) == len(cold.points)
        for pw, pc in zip(warm.points, cold.points):
            assert pw.feasible == pc.feasible
            if pw.feasible:
                assert pw.energy == pytest.approx(pc.energy, abs=1e-9)
