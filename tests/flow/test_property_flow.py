"""Property-based tests: the from-scratch solver against networkx.

Random layered DAGs with integer capacities and (possibly negative)
integer costs; the SSP solver's optimum must match networkx's
``min_cost_flow`` (node-demand formulation) and always satisfy the flow
axioms.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleFlowError
from repro.flow import (
    FlowNetwork,
    check_flow,
    decompose_into_paths,
    max_flow_value,
    solve_min_cost_flow,
    solve_with_lower_bounds,
)

# An arc spec: (tail_layer_offset handled below) — generate as tuples.
arc_strategy = st.tuples(
    st.integers(min_value=0, max_value=6),  # tail node id
    st.integers(min_value=1, max_value=7),  # head offset (ensures DAG)
    st.integers(min_value=1, max_value=5),  # capacity
    st.integers(min_value=-5, max_value=9),  # cost
)


def build_network(arcs: list[tuple[int, int, int, int]]) -> FlowNetwork:
    net = FlowNetwork()
    net.add_node(0)
    net.add_node(8)
    for tail, offset, capacity, cost in arcs:
        head = min(tail + offset, 8)
        if head == tail:
            continue
        net.add_arc(tail, head, capacity=capacity, cost=float(cost))
    return net


def networkx_min_cost(
    net: FlowNetwork, source: int, sink: int, value: int
) -> float:
    graph = nx.DiGraph()
    graph.add_node(source, demand=-value)
    graph.add_node(sink, demand=value)
    for node in net.nodes:
        if node not in (source, sink):
            graph.add_node(node, demand=0)
    # networkx DiGraph cannot hold parallel arcs; use MultiDiGraph.
    graph = nx.MultiDiGraph(graph)
    for arc in net.arcs:
        graph.add_edge(
            arc.tail, arc.head, capacity=arc.capacity, weight=arc.cost
        )
    flow_dict = nx.min_cost_flow(graph)
    # nx.cost_of_flow does not understand MultiDiGraph flow dicts.
    total = 0.0
    for u, inner in flow_dict.items():
        for v, keyed in inner.items():
            for key, flow in keyed.items():
                total += flow * graph[u][v][key]["weight"]
    return total


@given(arcs=st.lists(arc_strategy, min_size=1, max_size=18))
@settings(max_examples=120, deadline=None)
def test_matches_networkx_min_cost_flow(arcs):
    net = build_network(arcs)
    limit = max_flow_value(net, 0, 8)
    if limit == 0:
        return
    value = min(limit, 2)
    result = solve_min_cost_flow(net, 0, 8, value)
    check_flow(result, 0, 8, value)
    expected = networkx_min_cost(net, 0, 8, value)
    assert result.cost == pytest.approx(expected, abs=1e-6)


@given(arcs=st.lists(arc_strategy, min_size=1, max_size=18))
@settings(max_examples=80, deadline=None)
def test_flow_axioms_hold(arcs):
    net = build_network(arcs)
    limit = max_flow_value(net, 0, 8)
    if limit == 0:
        return
    result = solve_min_cost_flow(net, 0, 8, limit)
    check_flow(result, 0, 8, limit)
    # Decomposition must reproduce the flow exactly.
    paths = decompose_into_paths(result, 0, 8)
    assert len(paths) == limit


@given(
    arcs=st.lists(arc_strategy, min_size=1, max_size=14),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_lower_bounds_tighten_never_cheapen(arcs, data):
    """Adding a lower bound can only increase (or keep) the optimal cost."""
    net = build_network(arcs)
    limit = max_flow_value(net, 0, 8)
    if limit == 0:
        return
    value = limit
    free = solve_min_cost_flow(net, 0, 8, value)

    # Rebuild with a lower bound of 1 on one arc the free optimum uses.
    used = [a for a in net.arcs if free.flow(a) > 0]
    if not used:
        return
    chosen = data.draw(st.sampled_from(used))
    bounded = FlowNetwork()
    for arc in net.arcs:
        bounded.add_arc(
            arc.tail,
            arc.head,
            capacity=arc.capacity,
            cost=arc.cost,
            lower=1 if arc.index == chosen.index else 0,
        )
    result = solve_with_lower_bounds(bounded, 0, 8, value)
    check_flow(result, 0, 8, value)
    # The bound is satisfied by the free optimum, so costs must match.
    assert result.cost == pytest.approx(free.cost, abs=1e-6)


@given(
    arcs=st.lists(arc_strategy, min_size=2, max_size=14),
    bound_index=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=80, deadline=None)
def test_lower_bound_on_arbitrary_arc_is_respected_or_infeasible(
    arcs, bound_index
):
    net = build_network(arcs)
    limit = max_flow_value(net, 0, 8)
    if limit == 0 or net.num_arcs == 0:
        return
    target = net.arcs[bound_index % net.num_arcs]
    bounded = FlowNetwork()
    for arc in net.arcs:
        bounded.add_arc(
            arc.tail,
            arc.head,
            capacity=arc.capacity,
            cost=arc.cost,
            lower=1 if arc.index == target.index else 0,
        )
    try:
        result = solve_with_lower_bounds(bounded, 0, 8, limit)
    except InfeasibleFlowError:
        return
    check_flow(result, 0, 8, limit)
    assert result.flow(bounded.arcs[target.index]) >= 1
