"""Tests for task graphs."""

import pytest

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.task_graph import Task, TaskGraph


def block(name: str) -> BasicBlock:
    return BasicBlock.from_operations(
        name,
        [
            Operation(f"{name}_i", OpCode.INPUT, output=f"{name}_x"),
            Operation(
                f"{name}_n", OpCode.NEG, inputs=(f"{name}_x",),
                output=f"{name}_y",
            ),
        ],
        live_out=(f"{name}_y",),
    )


def chain_graph() -> TaskGraph:
    tg = TaskGraph("app")
    for name in ("t1", "t2", "t3"):
        tg.add_task(Task(name, block(name)))
    tg.add_edge("t1", "t2")
    tg.add_edge("t2", "t3")
    return tg


def test_topological_order():
    tg = chain_graph()
    order = tg.topological_order()
    assert [t.name for t in order] == ["t1", "t2", "t3"]


def test_blocks_iterates_in_order():
    tg = chain_graph()
    assert [b.name for b in tg.blocks()] == ["t1", "t2", "t3"]


def test_duplicate_task_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_task(Task("t1", block("t9")))


def test_cycle_rejected_and_rolled_back():
    tg = chain_graph()
    with pytest.raises(GraphError, match="cycle"):
        tg.add_edge("t3", "t1")
    # The offending edge must not linger.
    assert ("t3", "t1") not in tg.edges
    assert tg.topological_order() is not None


def test_self_edge_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_edge("t1", "t1")


def test_unknown_task_in_edge_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_edge("t1", "ghost")


def test_predecessors_successors():
    tg = chain_graph()
    assert [t.name for t in tg.predecessors("t2")] == ["t1"]
    assert [t.name for t in tg.successors("t2")] == ["t3"]


def test_rate_validation():
    with pytest.raises(GraphError):
        Task("t", block("b"), rate=0)


def test_len():
    assert len(chain_graph()) == 3
