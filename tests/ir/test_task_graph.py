"""Tests for task graphs."""

import pytest

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.task_graph import Task, TaskGraph


def block(name: str) -> BasicBlock:
    return BasicBlock.from_operations(
        name,
        [
            Operation(f"{name}_i", OpCode.INPUT, output=f"{name}_x"),
            Operation(
                f"{name}_n", OpCode.NEG, inputs=(f"{name}_x",),
                output=f"{name}_y",
            ),
        ],
        live_out=(f"{name}_y",),
    )


def chain_graph() -> TaskGraph:
    tg = TaskGraph("app")
    for name in ("t1", "t2", "t3"):
        tg.add_task(Task(name, block(name)))
    tg.add_edge("t1", "t2")
    tg.add_edge("t2", "t3")
    return tg


def test_topological_order():
    tg = chain_graph()
    order = tg.topological_order()
    assert [t.name for t in order] == ["t1", "t2", "t3"]


def test_blocks_iterates_in_order():
    tg = chain_graph()
    assert [b.name for b in tg.blocks()] == ["t1", "t2", "t3"]


def test_duplicate_task_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_task(Task("t1", block("t9")))


def test_cycle_rejected_and_rolled_back():
    tg = chain_graph()
    with pytest.raises(GraphError, match="cycle"):
        tg.add_edge("t3", "t1")
    # The offending edge must not linger.
    assert ("t3", "t1") not in tg.edges
    assert tg.topological_order() is not None


def test_self_edge_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_edge("t1", "t1")


def test_unknown_task_in_edge_rejected():
    tg = chain_graph()
    with pytest.raises(GraphError):
        tg.add_edge("t1", "ghost")


def test_predecessors_successors():
    tg = chain_graph()
    assert [t.name for t in tg.predecessors("t2")] == ["t1"]
    assert [t.name for t in tg.successors("t2")] == ["t3"]


def test_rate_validation():
    with pytest.raises(GraphError):
        Task("t", block("b"), rate=0)


def test_len():
    assert len(chain_graph()) == 3


# ----------------------------------------------------------------------
# repro/task-graph/v1 serialisation
# ----------------------------------------------------------------------

def test_round_trip_preserves_structure():
    import json

    from repro.ir.task_graph import TASK_GRAPH_SCHEMA

    tg = chain_graph()
    tg.add_edge("t1", "t3")
    data = json.loads(json.dumps(tg.to_dict()))  # through real JSON
    assert data["schema"] == TASK_GRAPH_SCHEMA
    rebuilt = TaskGraph.from_dict(data)
    assert rebuilt.name == tg.name
    assert rebuilt.edges == tg.edges
    assert [t.name for t in rebuilt.topological_order()] == [
        t.name for t in tg.topological_order()
    ]
    for task in tg.tasks:
        twin = rebuilt.task(task.name)
        assert twin.rate == task.rate
        assert twin.block.live_out == task.block.live_out
        assert [op.name for op in twin.block.operations] == [
            op.name for op in task.block.operations
        ]
    # and the rebuilt graph re-serialises byte-identically
    assert rebuilt.to_dict() == tg.to_dict()


def test_round_trip_preserves_rates_and_traces():
    from repro.workloads.registry import dag_workload

    graph = dag_workload("diamond")
    rebuilt = TaskGraph.from_dict(graph.to_dict())
    assert {t.name: t.rate for t in rebuilt.tasks} == {
        t.name: t.rate for t in graph.tasks
    }
    for task in graph.tasks:
        twin = rebuilt.task(task.name)
        for name, variable in task.block.variables.items():
            assert twin.block.variable(name).trace == variable.trace
            assert twin.block.variable(name).width == variable.width


def test_from_dict_rejects_unknown_schema():
    with pytest.raises(GraphError, match="schema"):
        TaskGraph.from_dict({"schema": "nope", "tasks": []})


def test_from_dict_rejects_missing_fields():
    from repro.ir.task_graph import TASK_GRAPH_SCHEMA

    with pytest.raises(GraphError):
        TaskGraph.from_dict(
            {"schema": TASK_GRAPH_SCHEMA, "tasks": [{"rate": 1}]}
        )


def test_from_dict_rejects_bad_opcode():
    from repro.ir.task_graph import TASK_GRAPH_SCHEMA

    with pytest.raises(GraphError, match="bad operation"):
        TaskGraph.from_dict(
            {
                "schema": TASK_GRAPH_SCHEMA,
                "name": "g",
                "tasks": [
                    {
                        "name": "t",
                        "block": {
                            "name": "b",
                            "operations": [
                                {"name": "o", "opcode": "teleport"}
                            ],
                        },
                    }
                ],
            }
        )


def test_from_dict_rejects_cyclic_documents():
    from repro.ir.task_graph import TASK_GRAPH_SCHEMA

    tg = chain_graph()
    data = tg.to_dict()
    data["edges"].append(["t3", "t1"])
    with pytest.raises(GraphError, match="cycle"):
        TaskGraph.from_dict(data)
