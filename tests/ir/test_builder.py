"""Tests for the block builder."""

import pytest

from repro.exceptions import GraphError
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode


def test_fir_like_build():
    b = BlockBuilder("k")
    x = b.input("x")
    c = b.const("c")
    p = b.mul(x, c, name="p")
    y = b.add(p, b.shift(p, name="ps"), name="y")
    b.output(y)
    b.live_out(y)
    block = b.build()
    assert set(block.variables) == {"x", "c", "p", "ps", "y"}
    assert block.live_out == {"y"}
    assert block.producer("y").opcode is OpCode.ADD


def test_auto_names_unique():
    b = BlockBuilder("k")
    x = b.input()
    y = b.input()
    assert x != y
    z = b.add(x, y)
    assert z in b.build().variables


def test_width_and_trace_attach():
    b = BlockBuilder("k", default_width=8)
    x = b.input("x", trace=(1, 2, 3))
    y = b.input("y", width=4)
    block = b.build()
    assert block.variable(x).width == 8
    assert block.variable(x).trace == (1, 2, 3)
    assert block.variable(y).width == 4


def test_undefined_operand_rejected():
    b = BlockBuilder("k")
    with pytest.raises(GraphError):
        b.add("nope", "nada")


def test_duplicate_name_rejected():
    b = BlockBuilder("k")
    b.input("x")
    with pytest.raises(GraphError):
        b.input("x")


def test_mac_and_generic_op():
    b = BlockBuilder("k")
    a, c, d = b.input("a"), b.input("c"), b.input("d")
    m = b.mac(a, c, d, name="m")
    n = b.op(OpCode.XOR, (m, a), name="n")
    block = b.build()
    assert block.producer(m).opcode is OpCode.MAC
    assert block.producer(n).opcode is OpCode.XOR


def test_op_rejects_sinks():
    b = BlockBuilder("k")
    x = b.input("x")
    with pytest.raises(GraphError):
        b.op(OpCode.OUTPUT, (x,))


def test_live_out_requires_defined():
    b = BlockBuilder("k")
    with pytest.raises(GraphError):
        b.live_out("ghost")


def test_output_creates_sink_op():
    b = BlockBuilder("k")
    x = b.input("x")
    b.output(x)
    block = b.build()
    sinks = [op for op in block if op.opcode is OpCode.OUTPUT]
    assert len(sinks) == 1
    assert sinks[0].inputs == (x,)


def test_move_and_neg():
    b = BlockBuilder("k")
    x = b.input("x")
    m = b.move(x)
    n = b.neg(m)
    b.output(n)
    block = b.build()
    assert block.producer(m).opcode is OpCode.MOVE
    assert block.producer(n).opcode is OpCode.NEG
