"""Tests for data variables and Hamming utilities."""

import pytest

from repro.exceptions import GraphError
from repro.ir.values import (
    DataVariable,
    expected_hamming,
    hamming_distance,
    mean_trace_hamming,
    normalized_switching,
    variables_by_name,
)


def test_defaults():
    v = DataVariable("x")
    assert v.width == 16
    assert v.trace == ()
    assert v.representative_value() is None
    assert str(v) == "x"


def test_trace_fits_width():
    v = DataVariable("x", 4, (0, 15))
    assert v.representative_value() == 0


def test_trace_overflow_rejected():
    with pytest.raises(GraphError):
        DataVariable("x", 4, (16,))


def test_negative_trace_rejected():
    with pytest.raises(GraphError):
        DataVariable("x", 4, (-1,))


def test_zero_width_rejected():
    with pytest.raises(GraphError):
        DataVariable("x", 0)


def test_hamming_distance():
    assert hamming_distance(0, 0) == 0
    assert hamming_distance(0b1010, 0b0101) == 4
    assert hamming_distance(0xFFFF, 0) == 16


def test_expected_hamming_default_half():
    assert expected_hamming(16) == 8.0
    assert expected_hamming(16, 0.25) == 4.0


def test_expected_hamming_bad_factor():
    with pytest.raises(GraphError):
        expected_hamming(16, 1.5)


def test_mean_trace_hamming():
    a = DataVariable("a", 4, (0b0000, 0b1111))
    b = DataVariable("b", 4, (0b0001, 0b1110))
    assert mean_trace_hamming(a, b) == pytest.approx(1.0)


def test_mean_trace_hamming_fallback_without_traces():
    a = DataVariable("a", 8)
    b = DataVariable("b", 8, (1, 2))
    assert mean_trace_hamming(a, b) == pytest.approx(4.0)


def test_normalized_switching():
    a = DataVariable("a", 4, (0b0000,))
    b = DataVariable("b", 4, (0b0011,))
    assert normalized_switching(a, b) == pytest.approx(0.5)


def test_variables_by_name_rejects_duplicates():
    with pytest.raises(GraphError):
        variables_by_name([DataVariable("x"), DataVariable("x")])


def test_equality_ignores_trace():
    assert DataVariable("x", 16, (1,)) == DataVariable("x", 16, (2,))
