"""Tests for basic blocks."""

import pytest

from repro.exceptions import GraphError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.values import DataVariable


def simple_block() -> BasicBlock:
    return BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("o0", OpCode.ADD, inputs=("a", "b"), output="c"),
            Operation("o1", OpCode.MUL, inputs=("c", "a"), output="d"),
            Operation("sink", OpCode.OUTPUT, inputs=("d",)),
        ],
        live_out=("d",),
    )


def test_producer_consumer_queries():
    block = simple_block()
    assert block.producer("c").name == "o0"
    assert [op.name for op in block.consumers("a")] == ["o0", "o1"]
    assert block.consumers("d")[0].name == "sink"


def test_auto_declared_variables():
    block = simple_block()
    assert set(block.variables) == {"a", "b", "c", "d"}
    assert block.variable("a") == DataVariable("a")


def test_variable_names_in_definition_order():
    assert simple_block().variable_names() == ("a", "b", "c", "d")


def test_read_before_def_rejected():
    with pytest.raises(GraphError, match="before its definition"):
        BasicBlock.from_operations(
            "bad",
            [Operation("o0", OpCode.ADD, inputs=("x", "y"), output="z")],
        )


def test_double_assignment_rejected():
    with pytest.raises(GraphError, match="single assignment"):
        BasicBlock.from_operations(
            "bad",
            [
                Operation("i0", OpCode.INPUT, output="a"),
                Operation("i1", OpCode.INPUT, output="a"),
            ],
        )


def test_duplicate_operation_name_rejected():
    with pytest.raises(GraphError, match="duplicate operation"):
        BasicBlock.from_operations(
            "bad",
            [
                Operation("i0", OpCode.INPUT, output="a"),
                Operation("i0", OpCode.INPUT, output="b"),
            ],
        )


def test_unknown_live_out_rejected():
    with pytest.raises(GraphError, match="live-out"):
        BasicBlock.from_operations(
            "bad",
            [Operation("i0", OpCode.INPUT, output="a")],
            live_out=("zzz",),
        )


def test_declared_but_undefined_variable_rejected():
    with pytest.raises(GraphError, match="never defined"):
        BasicBlock.from_operations(
            "bad",
            [Operation("i0", OpCode.INPUT, output="a")],
            variables=[DataVariable("ghost")],
        )


def test_dependence_edges():
    block = simple_block()
    edges = {(p.name, c.name) for p, c in block.dependence_edges()}
    assert edges == {
        ("i0", "o0"),
        ("i1", "o0"),
        ("o0", "o1"),
        ("i0", "o1"),
        ("o1", "sink"),
    }


def test_predecessors_successors():
    block = simple_block()
    o1 = block.operation("o1")
    assert {op.name for op in block.predecessors(o1)} == {"o0", "i0"}
    o0 = block.operation("o0")
    assert {op.name for op in block.successors(o0)} == {"o1"}


def test_is_dead():
    block = BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("o0", OpCode.ADD, inputs=("a", "b"), output="c"),
        ],
        live_out=("c",),
    )
    assert not block.is_dead("a")
    assert not block.is_dead("c")  # live out


def test_critical_path_length():
    block = simple_block()
    # i0 (1) -> o0 (2) -> o1 (3) -> sink (4): four delay-1 ops in a chain.
    assert block.critical_path_length() == 4


def test_sources_and_len_iter():
    block = simple_block()
    assert {op.name for op in block.sources()} == {"i0", "i1"}
    assert len(block) == 5
    assert [op.name for op in block][:2] == ["i0", "i1"]


def test_unknown_queries_raise():
    block = simple_block()
    with pytest.raises(GraphError):
        block.producer("nope")
    with pytest.raises(GraphError):
        block.variable("nope")
    with pytest.raises(GraphError):
        block.operation("nope")
