"""Tests for operations and opcodes."""

import pytest

from repro.exceptions import GraphError
from repro.ir.operations import OpCode, Operation


def test_basic_operation():
    op = Operation("o1", OpCode.ADD, inputs=("a", "b"), output="c")
    assert op.delay == 1
    assert "add" in str(op)
    assert "c = " in str(op)


def test_every_opcode_has_unit_class_and_energy():
    for opcode in OpCode:
        assert isinstance(opcode.unit_class, str)
        assert opcode.relative_energy >= 0.0


def test_mul_energy_matches_ratio_from_literature():
    # [14]: a 16-bit multiply dissipates 4x an addition.
    assert OpCode.MUL.relative_energy == 4 * OpCode.ADD.relative_energy


def test_value_defining_opcode_requires_output():
    with pytest.raises(GraphError):
        Operation("o1", OpCode.ADD, inputs=("a", "b"))


def test_output_sink_cannot_define():
    with pytest.raises(GraphError):
        Operation("o1", OpCode.OUTPUT, inputs=("a",), output="b")


def test_source_cannot_read():
    with pytest.raises(GraphError):
        Operation("o1", OpCode.INPUT, inputs=("a",), output="b")


def test_zero_delay_rejected():
    with pytest.raises(GraphError):
        Operation("o1", OpCode.ADD, inputs=("a", "b"), output="c", delay=0)


def test_duplicate_input_rejected():
    with pytest.raises(GraphError):
        Operation("o1", OpCode.ADD, inputs=("a", "a"), output="c")


def test_input_op_defines_value():
    op = Operation("o1", OpCode.INPUT, output="x")
    assert op.opcode.defines_value
    assert op.inputs == ()
