"""Documentation quality gate: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that all public
modules, classes, functions and methods (names not starting with an
underscore, defined in this package) have non-trivial docstrings.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_modules()
        if not (module.__doc__ and module.__doc__.strip())
    ]
    assert missing == []


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in _public_members(module):
            doc = inspect.getdoc(obj)
            if not doc or len(doc.strip()) < 10:
                missing.append(f"{module.__name__}.{name}")
    assert sorted(set(missing)) == []


def test_obs_package_is_walked():
    """The docstring gate must cover the observability layer."""
    names = {module.__name__ for module in iter_modules()}
    for expected in (
        "repro.obs",
        "repro.obs.trace",
        "repro.obs.export",
        "repro.obs.profile",
    ):
        assert expected in names


def test_obs_public_api_documented():
    """Everything re-exported by repro.obs — including the methods of the
    span/collector classes — must carry a real docstring."""
    import repro.obs as obs

    missing: list[str] = []
    for name in obs.__all__:
        obj = getattr(obs, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < 10:
            missing.append(f"repro.obs.{name}")
    for cls in (obs.Span, obs.TraceCollector):
        for attr_name, attr in vars(cls).items():
            if attr_name.startswith("_"):
                continue
            func = attr.fget if isinstance(attr, property) else attr
            if inspect.isfunction(func):
                doc = inspect.getdoc(func)
                if not doc or len(doc.strip()) < 5:
                    missing.append(f"{cls.__name__}.{attr_name}")
    assert sorted(set(missing)) == []


def test_core_entry_points_fully_documented():
    """The user-facing entry points must document every public method.

    (Short helper methods elsewhere may inherit meaning from their class
    docstring; the main API surface gets the stricter rule.)
    """
    from repro.core.allocation import Allocation
    from repro.core.pipeline import PipelineResult
    from repro.core.problem import AllocationProblem
    from repro.flow.graph import FlowNetwork

    missing: list[str] = []
    for cls in (Allocation, AllocationProblem, PipelineResult, FlowNetwork):
        for attr_name, attr in vars(cls).items():
            if attr_name.startswith("_"):
                continue
            func = attr.fget if isinstance(attr, property) else attr
            if inspect.isfunction(func):
                doc = inspect.getdoc(func)
                if not doc or len(doc.strip()) < 5:
                    missing.append(f"{cls.__name__}.{attr_name}")
    assert sorted(set(missing)) == []
