"""Tests for lowering allocations to instructions."""

import pytest

from repro.codegen.lower import lower, lower_allocation
from repro.codegen.program import Kind, Mem, Reg
from repro.core import AllocationProblem, allocate, allocate_block
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.scheduling.schedule import Schedule
from repro.workloads import dct4, fir_filter
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation


def small_case(register_count=1):
    block = BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("o0", OpCode.ADD, inputs=("a", "b"), output="c"),
            Operation("sink", OpCode.OUTPUT, inputs=("c",)),
        ],
    )
    schedule = Schedule(block, {"i0": 1, "i1": 1, "o0": 2, "sink": 3})
    problem = AllocationProblem.from_schedule(
        schedule, register_count, energy_model=StaticEnergyModel()
    )
    return block, schedule, allocate(problem)


def test_memory_operands_substituted():
    _, schedule, allocation = small_case(register_count=0)
    program = lower_allocation(schedule, allocation)
    [add] = [i for i in program.instructions if i.kind is Kind.OP]
    assert all(isinstance(op, Mem) for op in add.operands)
    assert isinstance(add.dest, Mem)


def test_register_operands_when_allocated():
    _, schedule, allocation = small_case(register_count=3)
    program = lower_allocation(schedule, allocation)
    [add] = [i for i in program.instructions if i.kind is Kind.OP]
    assert all(isinstance(op, Reg) for op in add.operands)
    assert isinstance(add.dest, Reg)
    assert program.memory_reads == 0
    assert program.memory_writes == 0


def test_memory_counts_match_report_in_block():
    result = allocate_block(fir_filter(6), register_count=3)
    program = lower(result)
    report = result.allocation.report
    problem = result.allocation.problem
    block_end_mem_reads = sum(
        1
        for segments in problem.segments.values()
        for seg in segments
        if seg.reads
        and seg.reads[-1] == problem.horizon + 1
        and seg.key not in result.allocation.residency
    )
    assert program.memory_reads == report.mem_reads - block_end_mem_reads
    assert program.memory_writes == report.mem_writes


def test_store_and_load_counts_consistent():
    result = allocate_block(fir_filter(5), register_count=1)
    program = lower(result)
    spills = [i for i in program.instructions if i.kind is Kind.STORE]
    loads = [i for i in program.instructions if i.kind is Kind.LOAD]
    assert program.stores == len(spills)
    assert program.loads == len(loads)
    # Every STORE sources a register and targets memory; LOADs inverse.
    for s in spills:
        assert isinstance(s.dest, Mem)
        assert isinstance(s.operands[0], Reg)
    for l in loads:
        assert isinstance(l.dest, Reg)
        assert isinstance(l.operands[0], Mem)


def test_restricted_access_loads_on_access_steps():
    result = allocate_block(
        fir_filter(6),
        register_count=6,
        memory=MemoryConfig(divisor=2, voltage=3.3),
    )
    program = lower(result)
    access = result.problem.access_times
    assert access is not None
    for instruction in program.instructions:
        if instruction.kind is Kind.LOAD:
            assert instruction.step in access
        if instruction.kind is Kind.STORE:
            assert instruction.step in access
        if instruction.kind in (Kind.OP, Kind.OUTPUT):
            for op in instruction.operands:
                if isinstance(op, Mem):
                    assert instruction.step in access


def test_program_listing_format():
    result = allocate_block(dct4(), register_count=3)
    program = lower(result)
    text = program.format()
    assert "block dct4" in text
    assert "step 1:" in text
    assert "input()" in text


def test_layout_addresses_used_when_given():
    result = allocate_block(fir_filter(6), register_count=2)
    assert result.memory_layout is not None
    with_layout = lower(result, use_layout=True)
    without = lower(result, use_layout=False)
    # Both are valid programs over the same accesses.
    assert with_layout.memory_reads == without.memory_reads
    assert with_layout.memory_writes == without.memory_writes
