"""Failure injection: the verifier must actually catch broken programs.

A verifier that never fires is worthless; these tests corrupt correct
programs in targeted ways and assert the simulation/verification pipeline
reports the fault.
"""

import random
from dataclasses import replace

import pytest

from repro.codegen import lower, simulate, verify_program
from repro.codegen.program import Kind, Mem, Reg
from repro.core import allocate_block
from repro.exceptions import AllocationError
from repro.ir.operations import OpCode
from repro.workloads import dct4


@pytest.fixture
def case():
    block = dct4()
    result = allocate_block(block, register_count=3)
    program = lower(result)
    rng = random.Random(13)
    inputs = {
        op.output: rng.getrandbits(16)
        for op in block
        if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST)
    }
    return block, result, program, inputs


def test_baseline_verifies(case):
    block, result, program, inputs = case
    verify_program(program, block, result.allocation, inputs)


def test_swapped_operand_detected(case):
    block, result, program, inputs = case
    # Find a subtraction and swap its operands: sub is not commutative.
    for index, instruction in enumerate(program.instructions):
        if (
            instruction.kind is Kind.OP
            and instruction.opcode is OpCode.SUB
            and instruction.operands[0] != instruction.operands[1]
        ):
            program.instructions[index] = replace(
                instruction, operands=list(reversed(instruction.operands))
            )
            break
    else:
        pytest.skip("no suitable subtraction found")
    with pytest.raises(AllocationError, match="simulated|reference"):
        verify_program(program, block, result.allocation, inputs)


def test_wrong_register_operand_detected(case):
    block, result, program, inputs = case
    # Redirect one register operand to a different register.
    for index, instruction in enumerate(program.instructions):
        if instruction.kind is Kind.OP:
            for pos, operand in enumerate(instruction.operands):
                if isinstance(operand, Reg):
                    operands = list(instruction.operands)
                    operands[pos] = Reg((operand.index + 1) % 3)
                    program.instructions[index] = replace(
                        instruction, operands=operands
                    )
                    with pytest.raises(AllocationError):
                        verify_program(
                            program, block, result.allocation, inputs
                        )
                    return
    pytest.skip("no register operand found")


def test_dropped_instruction_detected(case):
    block, result, program, inputs = case
    # Remove the producer of a non-input value: a later consumer reads an
    # uninitialised location or computes the wrong result.
    for index, instruction in enumerate(program.instructions):
        if instruction.kind is Kind.OP:
            del program.instructions[index]
            break
    with pytest.raises(AllocationError):
        verify_program(program, block, result.allocation, inputs)


def test_corrupted_memory_address_detected(case):
    block, result, program, inputs = case
    for index, instruction in enumerate(program.instructions):
        if instruction.kind is Kind.OP:
            for pos, operand in enumerate(instruction.operands):
                if isinstance(operand, Mem):
                    operands = list(instruction.operands)
                    operands[pos] = Mem(operand.address + 100, "corrupt")
                    program.instructions[index] = replace(
                        instruction, operands=operands
                    )
                    with pytest.raises(AllocationError):
                        verify_program(
                            program, block, result.allocation, inputs
                        )
                    return
    pytest.skip("no memory operand found")


def test_simulate_flags_uninitialised_reads(case):
    block, result, program, inputs = case
    # Drop every INPUT instruction: the first consumer must trip the
    # uninitialised-location check rather than read garbage.
    program.instructions = [
        i for i in program.instructions if i.kind is not Kind.INPUT
    ]
    with pytest.raises(AllocationError, match="uninitialised"):
        simulate(program, block, inputs)
