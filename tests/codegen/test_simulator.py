"""Simulation tests: lowered programs must compute the reference values.

The property test at the bottom is the repository's strongest end-to-end
check: random dataflow blocks, random register counts, restricted and
unrestricted memories, with and without the second-pass layout — the
machine-level simulation must agree with direct dataflow evaluation on
every observable value.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import (
    evaluate_block,
    lower,
    simulate,
    verify_program,
)
from repro.core import allocate_block
from repro.energy import ActivityEnergyModel, MemoryConfig, StaticEnergyModel
from repro.exceptions import AllocationError, InfeasibleFlowError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode
from repro.workloads import dct4, elliptic_wave_filter, fir_filter, iir_biquad
from repro.workloads.random_blocks import random_dfg


def source_values(block: BasicBlock, rng: random.Random) -> dict[str, int]:
    values = {}
    for op in block:
        if op.output and op.opcode in (OpCode.INPUT, OpCode.CONST):
            width = block.variable(op.output).width
            values[op.output] = rng.getrandbits(width)
    return values


@pytest.mark.parametrize(
    "factory,registers",
    [
        (dct4, 0),
        (dct4, 3),
        (dct4, 16),
        (lambda: fir_filter(6), 2),
        (lambda: iir_biquad(2), 4),
        (elliptic_wave_filter, 6),
    ],
)
def test_kernels_simulate_correctly(factory, registers):
    block = factory()
    result = allocate_block(block, register_count=registers)
    program = lower(result)
    rng = random.Random(hash(block.name) & 0xFFFF)
    inputs = source_values(block, rng)
    verify_program(program, block, result.allocation, inputs)


def test_restricted_memory_simulates_correctly():
    block = fir_filter(6)
    result = allocate_block(
        block,
        register_count=8,
        memory=MemoryConfig(divisor=2, voltage=3.3),
    )
    program = lower(result)
    inputs = source_values(block, random.Random(5))
    verify_program(program, block, result.allocation, inputs)


def test_outputs_recorded():
    block = dct4()
    result = allocate_block(block, register_count=4)
    program = lower(result)
    inputs = source_values(block, random.Random(1))
    state = simulate(program, block, inputs)
    reference = evaluate_block(block, inputs)
    for name in ("y0", "y1", "y2", "y3"):
        assert state.outputs[name] == reference[name]


def test_missing_input_raises():
    block = dct4()
    result = allocate_block(block, register_count=4)
    program = lower(result)
    with pytest.raises(AllocationError, match="no input value"):
        simulate(program, block, {})


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    registers=st.sampled_from((0, 1, 2, 4, 8)),
    divisor=st.sampled_from((1, 1, 2)),
    use_layout=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_random_blocks_simulate_correctly(
    seed, registers, divisor, use_layout
):
    rng = random.Random(seed)
    block = random_dfg(rng, operations=rng.randint(6, 22))
    memory = (
        MemoryConfig(divisor=divisor, voltage=3.3)
        if divisor > 1
        else MemoryConfig()
    )
    model = (
        StaticEnergyModel() if seed % 2 else ActivityEnergyModel()
    )
    try:
        result = allocate_block(
            block,
            register_count=registers,
            energy_model=model,
            memory=memory,
        )
    except InfeasibleFlowError:
        return
    program = lower(result, use_layout=use_layout)
    inputs = source_values(block, rng)
    verify_program(program, block, result.allocation, inputs)
