"""Tests for opcode semantics and the reference evaluator."""

import pytest

from repro.codegen.reference import evaluate_block
from repro.codegen.semantics import evaluate_opcode, mask_of
from repro.exceptions import GraphError
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode


def test_mask():
    assert mask_of(4) == 15
    assert mask_of(16) == 0xFFFF


def test_wraparound_arithmetic():
    assert evaluate_opcode(OpCode.ADD, [0xFFFF, 1], 16) == 0
    assert evaluate_opcode(OpCode.SUB, [0, 1], 16) == 0xFFFF
    assert evaluate_opcode(OpCode.MUL, [0x100, 0x100], 16) == 0
    assert evaluate_opcode(OpCode.MAC, [2, 3, 4], 16) == 10


def test_bitwise_and_shift():
    assert evaluate_opcode(OpCode.SHIFT, [0b1010], 8) == 0b0101
    assert evaluate_opcode(OpCode.AND, [0b1100, 0b1010], 8) == 0b1000
    assert evaluate_opcode(OpCode.OR, [0b1100, 0b1010], 8) == 0b1110
    assert evaluate_opcode(OpCode.XOR, [0b1100, 0b1010], 8) == 0b0110


def test_signed_ops():
    minus_one = 0xFFFF
    assert evaluate_opcode(OpCode.NEG, [1], 16) == minus_one
    assert evaluate_opcode(OpCode.ABS, [minus_one], 16) == 1
    assert evaluate_opcode(OpCode.CMP, [minus_one, 0], 16) == 1
    assert evaluate_opcode(OpCode.CMP, [0, minus_one], 16) == 0
    assert evaluate_opcode(OpCode.MOVE, [42], 16) == 42


def test_operand_arity_checked():
    with pytest.raises(GraphError):
        evaluate_opcode(OpCode.ADD, [1], 16)


def test_source_opcodes_have_no_semantics():
    with pytest.raises(GraphError):
        evaluate_opcode(OpCode.INPUT, [], 16)


def test_evaluate_block():
    b = BlockBuilder("k", default_width=8)
    x = b.input("x")
    y = b.input("y")
    s = b.add(x, y, name="s")
    d = b.sub(x, y, name="d")
    p = b.mul(s, d, name="p")
    b.output(p)
    block = b.build()
    values = evaluate_block(block, {"x": 7, "y": 3})
    assert values["s"] == 10
    assert values["d"] == 4
    assert values["p"] == 40


def test_evaluate_block_missing_input():
    b = BlockBuilder("k")
    x = b.input("x")
    b.neg(x, name="y")
    block = b.build()
    with pytest.raises(GraphError, match="no value"):
        evaluate_block(block, {})


def test_evaluate_block_range_check():
    b = BlockBuilder("k", default_width=4)
    b.input("x")
    block = b.build()
    with pytest.raises(GraphError, match="exceeds"):
        evaluate_block(block, {"x": 16})
