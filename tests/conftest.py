"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.energy import ActivityEnergyModel, StaticEnergyModel
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime


def make_lifetime(
    name: str,
    write: int,
    reads: tuple[int, ...] | int,
    live_out: bool = False,
    width: int = 16,
    trace: tuple[int, ...] = (),
) -> Lifetime:
    """Terse lifetime constructor used across test modules."""
    if isinstance(reads, int):
        reads = (reads,)
    return Lifetime(DataVariable(name, width, trace), write, reads, live_out)


@pytest.fixture
def static_model() -> StaticEnergyModel:
    return StaticEnergyModel()


@pytest.fixture
def activity_model() -> ActivityEnergyModel:
    return ActivityEnergyModel()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
