"""Tests for the capacitance table."""

import pytest

from repro.energy.capacitance import NOMINAL_VOLTAGE, CapacitanceTable
from repro.exceptions import EnergyModelError


def test_nominal_energies_match_literature_ratios():
    table = CapacitanceTable()
    # [14]: mem read 5x, mem write 10x a 16-bit add at nominal supply.
    assert table.energy(table.mem_read, NOMINAL_VOLTAGE) == pytest.approx(5.0)
    assert table.energy(table.mem_write, NOMINAL_VOLTAGE) == pytest.approx(
        10.0
    )
    assert table.energy(table.offchip, NOMINAL_VOLTAGE) == pytest.approx(11.0)


def test_register_access_cheaper_than_memory():
    table = CapacitanceTable()
    assert table.reg_read < table.mem_read
    assert table.reg_write < table.mem_write


def test_reg_bit_scales_to_full_write():
    table = CapacitanceTable()
    # A worst-case 16-bit flip equals the static register write energy.
    assert table.reg_bit * 16 == pytest.approx(table.reg_write)


def test_energy_quadratic_in_voltage():
    table = CapacitanceTable()
    e5 = table.energy(table.mem_read, 5.0)
    e2 = table.energy(table.mem_read, 2.5)
    assert e5 / e2 == pytest.approx(4.0)


def test_negative_capacitance_rejected():
    with pytest.raises(EnergyModelError):
        CapacitanceTable(mem_read=-1.0)


def test_non_positive_voltage_rejected():
    table = CapacitanceTable()
    with pytest.raises(EnergyModelError):
        table.energy(table.mem_read, 0.0)


def test_offchip_variant_is_costlier():
    onchip = CapacitanceTable.onchip_default()
    offchip = CapacitanceTable.offchip_memory()
    assert offchip.mem_read > onchip.mem_read
    assert offchip.mem_write > onchip.mem_write
    assert offchip.reg_read == onchip.reg_read
