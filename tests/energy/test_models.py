"""Tests for the energy models (eqs. 1 and 2)."""

import pytest

from repro.energy.models import (
    ActivityEnergyModel,
    EnergyModel,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.exceptions import EnergyModelError
from repro.ir.values import DataVariable


V16 = DataVariable("v", 16)


def test_static_model_constants():
    model = StaticEnergyModel()
    assert model.mem_read(V16) == pytest.approx(5.0)
    assert model.mem_write(V16) == pytest.approx(10.0)
    assert model.reg_read(V16) == pytest.approx(0.5)
    assert model.reg_write(V16, None) == pytest.approx(1.0)
    # Static: previous tenant irrelevant.
    assert model.reg_write(V16, DataVariable("w")) == model.reg_write(
        V16, None
    )


def test_static_model_voltage_scaling():
    model = StaticEnergyModel().with_voltages(2.5, 5.0)
    assert model.mem_read(V16) == pytest.approx(5.0 / 4)
    assert model.reg_read(V16) == pytest.approx(0.5)  # regs unscaled


def test_models_satisfy_protocol():
    for model in (
        StaticEnergyModel(),
        ActivityEnergyModel(),
        PairwiseSwitchingModel(),
    ):
        assert isinstance(model, EnergyModel)


def test_activity_register_writes_use_hamming():
    model = ActivityEnergyModel()
    a = DataVariable("a", 8, (0b00000000,))
    b = DataVariable("b", 8, (0b00001111,))
    # 4 bits flip; per-bit energy = reg_bit * 25.
    per_bit = model.table.energy(model.table.reg_bit, 5.0)
    assert model.reg_write(b, a) == pytest.approx(4 * per_bit)
    # Same variable re-written: no flips.
    assert model.reg_write(a, a) == 0.0
    # Unknown start: half the bits.
    assert model.reg_write(b, None) == pytest.approx(4 * per_bit)


def test_activity_register_reads_free():
    assert ActivityEnergyModel().reg_read(V16) == 0.0


def test_activity_memory_side_static():
    model = ActivityEnergyModel()
    assert model.mem_read(V16) == pytest.approx(5.0)
    assert model.mem_write(V16) == pytest.approx(10.0)


def test_activity_start_activity_validation():
    with pytest.raises(EnergyModelError):
        ActivityEnergyModel(start_activity=2.0)


def test_pairwise_model_uses_table():
    model = PairwiseSwitchingModel({("a", "b"): 0.25})
    a, b, c = DataVariable("a"), DataVariable("b"), DataVariable("c")
    per_bit = model.table.energy(model.table.reg_bit, 5.0)
    assert model.reg_write(b, a) == pytest.approx(0.25 * 16 * per_bit)
    # Symmetric fallback.
    assert model.reg_write(a, b) == pytest.approx(0.25 * 16 * per_bit)
    # Missing pair -> default activity 0.5.
    assert model.reg_write(c, a) == pytest.approx(0.5 * 16 * per_bit)
    # Start activity 0.5.
    assert model.reg_write(a, None) == pytest.approx(0.5 * 16 * per_bit)
    # Identity: no switching.
    assert model.reg_write(a, a) == 0.0


def test_pairwise_activity_bounds_checked():
    with pytest.raises(EnergyModelError):
        PairwiseSwitchingModel({("a", "b"): 1.5})


def test_with_voltages_returns_new_instance():
    model = ActivityEnergyModel()
    scaled = model.with_voltages(3.3, 2.0)
    assert scaled is not model
    assert scaled.mem_voltage == 3.3
    assert model.mem_voltage == 5.0


def test_bad_voltage_rejected():
    with pytest.raises(EnergyModelError):
        StaticEnergyModel(mem_voltage=-1.0)
