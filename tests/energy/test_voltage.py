"""Tests for voltage/frequency scaling."""

import pytest

from repro.energy.voltage import (
    MemoryConfig,
    cmos_delay_factor,
    max_divisor_supply,
    scale_energy,
)
from repro.exceptions import EnergyModelError


def test_delay_factor_nominal_is_one():
    assert cmos_delay_factor(5.0) == pytest.approx(1.0)


def test_delay_grows_as_voltage_drops():
    assert cmos_delay_factor(3.3) > 1.0
    assert cmos_delay_factor(2.0) > cmos_delay_factor(3.3)


def test_delay_below_threshold_rejected():
    with pytest.raises(EnergyModelError):
        cmos_delay_factor(0.5)


def test_max_divisor_supply_monotone():
    v1 = max_divisor_supply(1)
    v2 = max_divisor_supply(2)
    v4 = max_divisor_supply(4)
    assert v1 == pytest.approx(5.0)
    assert v4 < v2 < v1
    # The paper's table-1 sweep spans 5 V down to 2 V; our delay model
    # lands f/4 near that lower end.
    assert 1.8 < v4 < 2.6


def test_max_divisor_supply_meets_deadline():
    for divisor in (2, 3, 4, 8):
        v = max_divisor_supply(divisor)
        assert cmos_delay_factor(v) <= divisor + 1e-3


def test_bad_divisor_rejected():
    with pytest.raises(EnergyModelError):
        max_divisor_supply(0)


def test_scale_energy_quadratic():
    assert scale_energy(10.0, 5.0, 2.5) == pytest.approx(2.5)
    with pytest.raises(EnergyModelError):
        scale_energy(1.0, 0.0, 2.0)


def test_memory_config_access_times():
    full = MemoryConfig()
    assert not full.restricted
    assert full.access_times(10) is None

    half = MemoryConfig(divisor=2, voltage=3.3)
    assert half.restricted
    times = half.access_times(7)
    assert times == frozenset({1, 3, 5, 7})


def test_memory_config_scaled_constructor():
    config = MemoryConfig.scaled(4)
    assert config.divisor == 4
    assert config.voltage == pytest.approx(max_divisor_supply(4), abs=1e-2)


def test_memory_config_validation():
    with pytest.raises(EnergyModelError):
        MemoryConfig(divisor=0)
    with pytest.raises(EnergyModelError):
        MemoryConfig(voltage=0.0)
    with pytest.raises(EnergyModelError):
        MemoryConfig(offset=-1)
