"""Tests for the energy report accumulator."""

import pytest

from repro.energy.report import EnergyReport


def test_accumulation_and_totals():
    report = EnergyReport()
    report.add_mem_write(10.0)
    report.add_mem_read(10.0, count=2)
    report.add_reg_write(1.0)
    report.add_reg_read(1.5, count=3)
    assert report.mem_writes == 1
    assert report.mem_reads == 2
    assert report.reg_writes == 1
    assert report.reg_reads == 3
    assert report.mem_accesses == 3
    assert report.reg_accesses == 4
    assert report.mem_energy == pytest.approx(20.0)
    assert report.reg_energy == pytest.approx(2.5)
    assert report.total_energy == pytest.approx(22.5)


def test_empty_report():
    report = EnergyReport()
    assert report.total_energy == 0.0
    assert report.mem_accesses == 0


def test_format_contains_counts_and_notes():
    report = EnergyReport()
    report.add_mem_write(10.0)
    report.notes.append("hello")
    text = report.format()
    assert "memory" in text
    assert "registers" in text
    assert "note: hello" in text
