"""Tests for switching-activity estimation."""

import random

import pytest

from repro.energy.switching import (
    attach_traces,
    correlated_trace,
    gaussian_dsp_trace,
    pairwise_activity_table,
    uniform_trace,
)
from repro.exceptions import EnergyModelError
from repro.ir.values import DataVariable, hamming_distance


def mean_activity(trace: tuple[int, ...], width: int) -> float:
    flips = [
        hamming_distance(a, b) for a, b in zip(trace, trace[1:])
    ]
    return sum(flips) / len(flips) / width


def test_uniform_trace_activity_near_half():
    rng = random.Random(1)
    trace = uniform_trace(rng, 16, 600)
    assert 0.42 < mean_activity(trace, 16) < 0.58


def test_correlated_trace_activity_matches_flip_probability():
    rng = random.Random(2)
    trace = correlated_trace(rng, 16, 600, flip_probability=0.1)
    assert 0.06 < mean_activity(trace, 16) < 0.14


def test_gaussian_trace_lower_activity_than_uniform():
    rng = random.Random(3)
    trace = gaussian_dsp_trace(rng, 16, 600, sigma_fraction=0.05)
    uniform = uniform_trace(random.Random(3), 16, 600)
    # Correlated small-magnitude data switches meaningfully less than
    # independent uniform words (which sit at ~0.5).
    assert mean_activity(trace, 16) < 0.45
    assert mean_activity(trace, 16) < mean_activity(uniform, 16)
    assert all(0 <= v < (1 << 16) for v in trace)


def test_gaussian_trace_high_correlation_lowers_activity_further():
    base = mean_activity(
        gaussian_dsp_trace(random.Random(3), 16, 600, 0.05, rho=0.5), 16
    )
    tight = mean_activity(
        gaussian_dsp_trace(random.Random(3), 16, 600, 0.05, rho=0.98), 16
    )
    assert tight < base


def test_trace_lengths_and_validation():
    rng = random.Random(4)
    assert len(uniform_trace(rng, 8, 10)) == 10
    with pytest.raises(EnergyModelError):
        uniform_trace(rng, 0, 10)
    with pytest.raises(EnergyModelError):
        uniform_trace(rng, 8, 0)
    with pytest.raises(EnergyModelError):
        correlated_trace(rng, 8, 10, flip_probability=2.0)
    with pytest.raises(EnergyModelError):
        gaussian_dsp_trace(rng, 8, 10, sigma_fraction=0.0)


def test_pairwise_activity_table():
    a = DataVariable("a", 4, (0b0000, 0b1111))
    b = DataVariable("b", 4, (0b0011, 0b1111))
    c = DataVariable("c", 4)  # no trace
    table = pairwise_activity_table([a, b, c])
    assert table[("a", "b")] == pytest.approx(0.25)
    assert table[("b", "a")] == pytest.approx(0.25)
    assert ("a", "c") not in table
    assert ("a", "a") not in table


def test_attach_traces():
    variables = {"x": DataVariable("x", 8), "y": DataVariable("y", 8)}
    out = attach_traces(variables, {"x": [1, 2, 3]})
    assert out["x"].trace == (1, 2, 3)
    assert out["y"].trace == ()
    # Originals untouched.
    assert variables["x"].trace == ()
