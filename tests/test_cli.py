"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo", "--kernel", "dct", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "dct4" in out
    assert "registers used" in out


def test_compare(capsys):
    assert main(["compare", "--kernel", "fir", "--taps", "5", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "two-phase" in out
    assert "improvement over best baseline" in out


def test_table1(capsys):
    assert main(["table1", "-R", "16"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "f/4" in out


def test_figures(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "figure 3" in out
    assert "figure 4" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_activity_model_option(capsys):
    assert main(
        ["compare", "--kernel", "dct", "-R", "3", "--model", "activity"]
    ) == 0


def test_chart(capsys):
    assert main(["chart", "--kernel", "dct", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "step" in out
    assert "legend" in out


def test_diagnose_feasible(capsys):
    assert (
        main(["diagnose", "--kernel", "dct", "-R", "9", "--divisor", "1"])
        == 0
    )
    assert "feasible" in capsys.readouterr().out


def test_diagnose_infeasible_exit_code(capsys):
    code = main(
        ["diagnose", "--kernel", "fir", "--taps", "6", "-R", "2",
         "--divisor", "4"]
    )
    assert code == 1
    assert "needs R>=" in capsys.readouterr().out


def test_offsets(capsys):
    assert main(["offsets", "--kernel", "fir", "--taps", "5", "-R", "2"]) == 0
    out = capsys.readouterr().out
    assert "AR update cost" in out
    assert "MOA with 2 address registers" in out


def test_offsets_no_memory_traffic(capsys):
    assert main(["offsets", "--kernel", "dct", "-R", "16"]) == 0
    assert "no memory traffic" in capsys.readouterr().out


def test_explore(capsys):
    assert main(["explore", "--kernel", "dct"]) == 0
    out = capsys.readouterr().out
    assert "design space" in out
    assert "pareto frontier" in out


def test_profile_emits_json_run_report(capsys):
    assert main(["profile", "fir", "--taps", "5", "-R", "3"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro.obs/run-report/v1"
    assert report["workload"] == "fir"
    assert "pipeline.allocate" in report["stages"]
    counters = report["trace"]["counters"]
    assert counters["ssp.dijkstra_pops"] > 0
    assert counters["ssp.augmenting_paths"] > 0
    assert counters["network.arcs_built"] > 0
    assert report["allocation"]["registers_used"] >= 1


def test_profile_defaults_to_quickstart_workload(capsys):
    assert main(["profile"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["workload"] == "fir"
    assert report["params"]["registers"] == 4


def test_profile_table_format(capsys):
    assert main(["profile", "dct", "-R", "3", "--format", "table"]) == 0
    out = capsys.readouterr().out
    assert "run report" in out
    assert "ssp.dijkstra_pops" in out


def test_profile_csv_to_file(tmp_path, capsys):
    target = tmp_path / "report.csv"
    assert main(
        ["profile", "fir", "--taps", "4", "-R", "2",
         "--format", "csv", "--output", str(target)]
    ) == 0
    assert "wrote csv run report" in capsys.readouterr().out
    lines = target.read_text().splitlines()
    assert lines[0] == "kind,name,value"
    assert any(line.startswith("counter,ssp.augmenting_paths,") for line in lines)


def test_profile_unwritable_output_is_a_clean_error(capsys):
    code = main(
        ["profile", "fir", "--taps", "4", "-R", "2",
         "--output", "/nonexistent-dir/report.json"]
    )
    assert code == 1
    assert "cannot write" in capsys.readouterr().err


def test_cli_docstring_mentions_all_commands():
    import repro.cli as cli

    for command in (
        "demo", "compare", "table1", "figures", "chart", "diagnose",
        "offsets", "explore", "profile", "fuzz", "dag", "batch", "serve",
    ):
        assert command in cli.__doc__


def test_fuzz_smoke(capsys):
    assert main(["fuzz", "--seed", "0", "--iters", "5", "--no-lp"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["schema"] == "repro.verify/fuzz-report/v1"
    assert report["statuses"]["violation"] == 0
    assert report["failures"] == []
    assert "5 cases" in captured.err


def test_fuzz_to_file(tmp_path, capsys):
    target = tmp_path / "fuzz.json"
    assert main(
        ["fuzz", "--seed", "1", "--iters", "4", "--no-lp",
         "--output", str(target)]
    ) == 0
    assert "wrote fuzz report" in capsys.readouterr().out
    report = json.loads(target.read_text())
    assert report["seed"] == 1
    assert report["iterations"] == 4


def test_fuzz_unwritable_output_is_a_clean_error(capsys):
    code = main(
        ["fuzz", "--iters", "1", "--no-lp",
         "--output", "/nonexistent-dir/fuzz.json"]
    )
    assert code == 1
    assert "cannot write" in capsys.readouterr().err


def _batch_manifest(tmp_path, jobs=None):
    manifest = {
        "schema": "repro.service/manifest/v1",
        "defaults": {"seed": 2024},
        "jobs": jobs
        or [
            {"kind": "figure", "name": "fig3"},
            {"kind": "kernel", "name": "fir", "taps": 6, "registers": 3},
            {"kind": "random", "count": 3, "variables": 6, "horizon": 10,
             "seed": 4, "registers": 2},
        ],
    }
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(manifest), encoding="utf-8")
    return str(path)


def test_batch_json_report(tmp_path, capsys):
    assert main(["batch", _batch_manifest(tmp_path)]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["schema"] == "repro.service/batch-report/v1"
    assert report["totals"]["jobs"] == 5
    assert report["totals"]["ok"] == 5
    assert "5 jobs, 5 ok" in captured.err


def test_batch_second_run_is_cache_served(tmp_path, capsys):
    manifest = _batch_manifest(tmp_path)
    cache_dir = str(tmp_path / "cache")
    assert main(["batch", manifest, "--cache-dir", cache_dir]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(["batch", manifest, "--cache-dir", cache_dir]) == 0
    second = json.loads(capsys.readouterr().out)
    assert first["totals"]["cached"] == 0
    assert second["totals"]["cached"] == second["totals"]["jobs"]
    assert second["totals"]["cache"]["hit_rate"] >= 0.9
    # Byte-identical energies across runs.
    assert [j["objective"] for j in second["jobs"]] == [
        j["objective"] for j in first["jobs"]
    ]


def test_batch_inject_fault_falls_back(tmp_path, capsys):
    assert main(
        ["batch", _batch_manifest(tmp_path), "--inject-fault", "ssp"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["totals"]["failed"] == 0
    assert report["totals"]["fallbacks"] >= report["totals"]["jobs"]
    assert set(report["totals"]["by_solver"]) == {"cycle_canceling"}


def test_batch_text_format_to_file(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(
        ["batch", _batch_manifest(tmp_path), "--format", "text",
         "--output", str(target)]
    ) == 0
    assert "wrote batch report" in capsys.readouterr().out
    text = target.read_text()
    assert "batch report" in text and "fig3" in text


def test_batch_bad_manifest_is_a_clean_error(tmp_path, capsys):
    missing = str(tmp_path / "absent.json")
    assert main(["batch", missing]) == 2
    assert "cannot read manifest" in capsys.readouterr().err


def test_batch_exhausted_ladder_exits_nonzero(tmp_path, capsys):
    manifest = _batch_manifest(
        tmp_path,
        jobs=[{"kind": "random", "variables": 5, "horizon": 8, "seed": 1,
               "registers": 2}],
    )
    code = main(
        ["batch", manifest, "--inject-fault", "ssp",
         "--inject-fault", "cycle_canceling",
         "--inject-fault", "two_phase", "--retries", "0"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["totals"]["failed"] == 1


def test_serve_rejects_bad_tunables(capsys):
    # Validation failures surface as exit 2 + a message, no traceback,
    # and happen before any socket is bound.
    assert main(["serve", "--queue-capacity", "0"]) == 2
    assert "capacity" in capsys.readouterr().err
    assert main(["serve", "--workers", "0"]) == 2
    assert "workers" in capsys.readouterr().err
    assert main(["serve", "--shard-width", "9", "--cache-dir", "x"]) == 2
    assert "shard_width" in capsys.readouterr().err


def test_batch_sarif_merges_one_run_per_job(tmp_path):
    manifest = _batch_manifest(tmp_path)
    target = tmp_path / "merged.sarif"
    assert main(["batch", manifest, "--sarif", str(target)]) == 0
    doc = json.loads(target.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    assert len(doc["runs"]) == 5  # one run per manifest job
    jobs = [run["properties"]["job"] for run in doc["runs"]]
    assert "fig3" in jobs and len(jobs) == len(set(jobs))
    assert all(run["properties"]["blocking"] is False for run in doc["runs"])


def test_batch_lint_gate_rejects_provably_bad_jobs(tmp_path, capsys):
    manifest = _batch_manifest(
        tmp_path,
        jobs=[
            {"kind": "kernel", "name": "fir", "taps": 6, "registers": 3},
            {"kind": "figure", "name": "fig3", "registers": 0, "divisor": 2},
        ],
    )
    target = tmp_path / "merged.sarif"
    code = main(
        ["batch", manifest, "--lint", "error", "--sarif", str(target),
         "-o", str(tmp_path / "report.json")]
    )
    assert code == 1
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["totals"]["rejected"] == 1
    statuses = {job["job_id"]: job["status"] for job in report["jobs"]}
    assert statuses["fig3"] == "rejected"
    doc = json.loads(target.read_text(encoding="utf-8"))
    blocked = [r for r in doc["runs"] if r["properties"]["blocking"]]
    assert len(blocked) == 1
    assert any(
        res["ruleId"] == "RA601" for res in blocked[0]["results"]
    )


def test_dag_json_report(capsys):
    assert main(["dag", "diamond", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro.dag/report/v1"
    assert report["graph"] == "diamond"
    assert report["tasks"] == 4
    assert all(b["job"]["status"] == "ok" for b in report["blocks"])
    assert all(b["job"]["certified"] for b in report["blocks"])
    assert len(report["frontier"]) >= 2


def test_dag_text_report(capsys):
    assert main(["dag", "fanin", "--cores", "3"]) == 0
    out = capsys.readouterr().out
    assert "fanin" in out
    assert "frontier" in out
    assert "per frame" in out


def test_dag_emits_replayable_manifest(tmp_path, capsys):
    out_dir = tmp_path / "dagjobs"
    assert main(
        ["dag", "diamond", "--format", "json",
         "--emit-manifest", str(out_dir)]
    ) == 0
    captured = capsys.readouterr()
    assert "wrote batch manifest" in captured.err
    manifest = out_dir / "diamond.manifest.json"
    assert manifest.exists()
    dag_report = json.loads(captured.out)

    # The emitted manifest replays through the ordinary batch command
    # and lands on the same objectives.
    assert main(["batch", str(manifest)]) == 0
    batch_report = json.loads(capsys.readouterr().out)
    assert batch_report["totals"]["ok"] == dag_report["tasks"]
    by_job = {j["job_id"]: j["objective"] for j in batch_report["jobs"]}
    for block in dag_report["blocks"]:
        assert by_job[block["job"]["job_id"]] == pytest.approx(
            block["job"]["objective"]
        )


def test_dag_output_to_file(tmp_path, capsys):
    target = tmp_path / "dag.json"
    assert main(
        ["dag", "diamond", "--format", "json", "-o", str(target)]
    ) == 0
    assert "wrote dag report" in capsys.readouterr().out
    assert json.loads(target.read_text())["schema"] == "repro.dag/report/v1"


def test_dag_infeasible_deadline_is_a_clean_error(capsys):
    code = main(["dag", "diamond", "--deadline", "1"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_dag_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["dag", "moebius"])


def test_lint_covers_dag_workloads(capsys):
    assert main(["lint", "diamond", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report) == {"front", "left", "right", "back"}
    for entry in report.values():
        assert entry["schema"] == "repro.lint/report/v1"
        assert "diagnostics" in entry


def test_profile_covers_dag_workloads(capsys):
    assert main(["profile", "fanin", "-R", "4"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["workload"] == "fanin"
    assert report["params"]["tasks"] == 5
    assert report["params"]["energy_per_frame"] > 0


def test_fuzz_dag_family(capsys):
    assert main(
        ["fuzz", "--family", "dag", "--seed", "5", "--iters", "2"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["family"] == "dag"
    assert report["statuses"]["violation"] == 0
