"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo", "--kernel", "dct", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "dct4" in out
    assert "registers used" in out


def test_compare(capsys):
    assert main(["compare", "--kernel", "fir", "--taps", "5", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "two-phase" in out
    assert "improvement over best baseline" in out


def test_table1(capsys):
    assert main(["table1", "-R", "16"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "f/4" in out


def test_figures(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "figure 3" in out
    assert "figure 4" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_activity_model_option(capsys):
    assert main(
        ["compare", "--kernel", "dct", "-R", "3", "--model", "activity"]
    ) == 0


def test_chart(capsys):
    assert main(["chart", "--kernel", "dct", "-R", "3"]) == 0
    out = capsys.readouterr().out
    assert "step" in out
    assert "legend" in out


def test_diagnose_feasible(capsys):
    assert (
        main(["diagnose", "--kernel", "dct", "-R", "9", "--divisor", "1"])
        == 0
    )
    assert "feasible" in capsys.readouterr().out


def test_diagnose_infeasible_exit_code(capsys):
    code = main(
        ["diagnose", "--kernel", "fir", "--taps", "6", "-R", "2",
         "--divisor", "4"]
    )
    assert code == 1
    assert "needs R>=" in capsys.readouterr().out


def test_offsets(capsys):
    assert main(["offsets", "--kernel", "fir", "--taps", "5", "-R", "2"]) == 0
    out = capsys.readouterr().out
    assert "AR update cost" in out
    assert "MOA with 2 address registers" in out


def test_offsets_no_memory_traffic(capsys):
    assert main(["offsets", "--kernel", "dct", "-R", "16"]) == 0
    assert "no memory traffic" in capsys.readouterr().out


def test_explore(capsys):
    assert main(["explore", "--kernel", "dct"]) == 0
    out = capsys.readouterr().out
    assert "design space" in out
    assert "pareto frontier" in out


def test_cli_docstring_mentions_all_commands():
    import repro.cli as cli

    for command in (
        "demo", "compare", "table1", "figures", "chart", "diagnose",
        "offsets",
    ):
        assert command in cli.__doc__
