"""CLI surface of the storage hierarchy: bank flags on demo/explore/
fuzz/batch."""

import json

from repro.cli import main


def test_demo_with_banks(capsys):
    code = main(
        ["demo", "--kernel", "fir", "--taps", "4", "-R", "4",
         "--banks", "2", "--bank-period", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "registers used" in out


def test_explore_banked_sweep(capsys):
    code = main(
        ["explore", "--kernel", "fir", "--taps", "4", "--banks", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "storage space" in out
    assert "best point" in out


def test_explore_without_banks_keeps_classic_table(capsys):
    assert main(["explore", "--kernel", "fir", "--taps", "4"]) == 0
    out = capsys.readouterr().out
    assert "pareto frontier" in out


def test_fuzz_banked_family(capsys, tmp_path):
    report_path = tmp_path / "fuzz.json"
    code = main(
        ["fuzz", "--seed", "7", "--iters", "6", "--family", "banked",
         "--output", str(report_path)]
    )
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["family"] == "banked"
    assert report["statuses"]["violation"] == 0


def test_batch_with_bank_flags(capsys, tmp_path):
    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps({
        "schema": "repro.service/manifest/v1",
        "jobs": [{"kind": "figure", "name": "fig3", "registers": 2}],
    }))
    out_path = tmp_path / "report.json"
    code = main(
        ["batch", str(manifest), "--banks", "2", "--bank-period", "2",
         "--output", str(out_path)]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["totals"]["jobs"] == 1
    assert report["totals"]["failed"] == 0


def test_batch_multibank_manifest_certifies(tmp_path):
    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps({
        "schema": "repro.service/manifest/v2",
        "jobs": [{"kind": "figure", "name": "fig3", "registers": 2,
                  "storage": {"banks": 2, "period": 2}}],
    }))
    out_path = tmp_path / "report.json"
    code = main(
        ["batch", str(manifest), "--lint", "error",
         "--certify-fraction", "1.0", "--output", str(out_path)]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["totals"]["certified"] == 1
    assert report["jobs"][0]["status"] == "ok"
