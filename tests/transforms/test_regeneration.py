"""Tests for the data-regeneration transformation."""

import pytest

from repro.core import AllocationProblem, allocate
from repro.core.pipeline import allocate_block
from repro.energy import StaticEnergyModel
from repro.exceptions import GraphError
from repro.ir.builder import BlockBuilder
from repro.lifetimes import extract_lifetimes, max_density
from repro.scheduling import list_schedule
from repro.transforms.regeneration import (
    apply_regeneration,
    regenerate,
    regeneration_candidates,
)


def dead_operand_block():
    """v's operands die immediately: regeneration would backfire."""
    b = BlockBuilder("k")
    x = b.input("x")
    c = b.const("c")
    v = b.add(x, c, name="v")
    o1 = b.neg(v, name="o1")
    o2 = b.shift(v, name="o2")
    o3 = b.add(o1, o2, name="o3")
    o4 = b.add(o3, v, name="o4")
    b.output(o4)
    b.live_out(o4)
    return b.build()


def coefficient_reuse_block():
    """v = x + c with x and c reused late: the profitable regime."""
    b = BlockBuilder("coef")
    x = b.input("x")
    c = b.const("c")
    v = b.add(x, c, name="v")
    a = b.neg(v, name="a")
    t = a
    for i in range(4):
        t = b.shift(t, name=f"p{i}")
    u = b.neg(a, name="u0")
    for i in range(4):
        u = b.shift(u, name=f"u{i + 1}")
    m = b.add(t, u, name="m")
    xl = b.add(m, x, name="xl")
    cl = b.add(xl, c, name="cl")
    z = b.add(cl, v, name="z")
    b.output(z)
    b.live_out(z)
    return b.build()


def test_candidates_found_when_operands_reused():
    block = coefficient_reuse_block()
    savings = regeneration_candidates(block, StaticEnergyModel())
    assert "v" in savings
    assert savings["v"] > 0
    assert "x" not in savings  # sources never qualify
    assert "a" not in savings  # computed operand downstream


def test_dead_operand_value_not_a_candidate():
    block = dead_operand_block()
    assert regeneration_candidates(block, StaticEnergyModel()) == {}
    assert regenerate(block, StaticEnergyModel()) is block


def test_multiply_sits_at_the_break_even():
    # With the [14] ratios a 16-bit multiply (4x an add) plus two operand
    # reads costs exactly one memory read — not strictly cheaper, so it
    # is not regenerated even with late operand reuse.
    b = BlockBuilder("k")
    x = b.input("x")
    c = b.const("c")
    v = b.mul(x, c, name="v")
    o1 = b.neg(v, name="o1")
    o2 = b.shift(o1, name="o2")
    xl = b.add(o2, x, name="xl")
    cl = b.add(xl, c, name="cl")
    z = b.add(cl, v, name="z")
    b.live_out(z)
    b.output(z)
    block = b.build()
    assert "v" not in regeneration_candidates(block, StaticEnergyModel())


def test_live_out_values_excluded():
    b = BlockBuilder("k")
    x = b.input("x")
    c = b.const("c")
    v = b.add(x, c, name="v")
    b.neg(v, name="o1")
    b.shift(v, name="o2")
    b.live_out(v, "o1", "o2")
    block = b.build()
    assert "v" not in regeneration_candidates(block, StaticEnergyModel())


def test_apply_creates_single_use_clones():
    block = coefficient_reuse_block()
    transformed = apply_regeneration(block, ["v"])
    assert len(transformed.consumers("v")) == 1
    assert "v__regen1" in transformed.variables
    assert len(transformed.consumers("v__regen1")) == 1
    assert (
        transformed.variable("v__regen1").width == block.variable("v").width
    )


def test_apply_validates_inputs():
    block = coefficient_reuse_block()
    with pytest.raises(GraphError, match="fewer than two"):
        apply_regeneration(block, ["z"])


def test_transformed_block_schedules_and_allocates():
    block = regenerate(coefficient_reuse_block(), StaticEnergyModel())
    result = allocate_block(block, register_count=2)
    assert result.total_energy > 0


def test_regeneration_cuts_density_and_energy_with_lazy_schedule():
    """With clones scheduled lazily (next to their consumers) the long
    lifetime disappears and the allocation gets strictly cheaper when
    registers are scarce."""
    model = StaticEnergyModel()
    original = coefficient_reuse_block()
    transformed = regenerate(original, model)
    assert transformed is not original

    s_orig = list_schedule(original, lazy=True)
    s_tr = list_schedule(transformed, lazy=True)
    d_orig = max_density(extract_lifetimes(s_orig).values(), s_orig.length)
    d_tr = max_density(extract_lifetimes(s_tr).values(), s_tr.length)
    assert d_tr < d_orig

    for registers in (2, 3):
        before = allocate(
            AllocationProblem.from_schedule(
                s_orig, registers, energy_model=model
            )
        )
        after = allocate(
            AllocationProblem.from_schedule(
                s_tr, registers, energy_model=model
            )
        )
        assert after.report.mem_accesses < before.report.mem_accesses
        assert after.objective < before.objective
