"""E1 — figure 1: interval graph, density regions, network topology,
restricted access times (sections 5.1 and 5.2 construction facts)."""

import pytest

from repro.core.network_builder import SINK, SOURCE, build_network
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.workloads.paper_examples import (
    FIGURE1_ACCESS_TIMES,
    FIGURE1_HORIZON,
    figure1_lifetimes,
)


def problem(**options) -> AllocationProblem:
    return AllocationProblem(
        figure1_lifetimes(),
        register_count=2,
        horizon=FIGURE1_HORIZON,
        energy_model=StaticEnergyModel(),
        **options,
    )


def handoff_pairs(built) -> set[tuple[str | None, str | None]]:
    pairs = set()
    for arc in built.network.arcs:
        if arc.data and arc.data[0] == "handoff":
            src = arc.data[1].name if arc.data[1] is not None else None
            dst = arc.data[2].name if arc.data[2] is not None else None
            pairs.add((src, dst))
    return pairs


def test_density_regions_match_paper():
    p = problem()
    # "a region of maximum lifetime density is from time 2 to time 3 and
    # another region is from time 5 to time 6"
    assert p.max_density == 3
    assert p.density_regions == [(2, 2), (5, 5)]


def test_step3_events():
    lifetimes = figure1_lifetimes()
    # "at control step three, variables a and b are read and d is written"
    read_at_3 = {n for n, lt in lifetimes.items() if 3 in lt.read_times}
    written_at_3 = {n for n, lt in lifetimes.items() if lt.write_time == 3}
    assert read_at_3 == {"a", "b"}
    assert written_at_3 == {"d"}


def test_live_out_variables():
    lifetimes = figure1_lifetimes()
    # "Variables d and c are read after time 7 by another task"
    assert lifetimes["c"].live_out and lifetimes["d"].live_out
    assert lifetimes["c"].end == FIGURE1_HORIZON + 1


def test_bipartite_between_regions():
    built = build_network(problem())
    pairs = handoff_pairs(built)
    # "lifetimes of a and b end and lifetimes of e and d begin" between the
    # regions -> complete bipartite {a,b} x {d,e}.
    for src in ("a", "b"):
        for dst in ("d", "e"):
            assert (src, dst) in pairs, f"missing {src}->{dst}"


def test_source_connects_to_first_region_variables():
    built = build_network(problem())
    pairs = handoff_pairs(built)
    source_targets = {dst for src, dst in pairs if src is None}
    # Variables starting before the first max-density region.
    assert source_targets == {"a", "b", "c"}


def test_sink_receives_last_region_reads():
    built = build_network(problem())
    pairs = handoff_pairs(built)
    sink_sources = {src for src, dst in pairs if dst is None}
    # c, d extend past time 7; e's read at 6 lies after the last region.
    assert sink_sources == {"c", "d", "e"}


def test_no_handoff_skips_a_region():
    built = build_network(problem())
    pairs = handoff_pairs(built)
    # a is read at 3 (before region k=5); d/e handoffs are fine, but no
    # arc may jump a->t or a past the second region.
    assert ("a", None) not in pairs
    assert ("b", None) not in pairs


def test_restricted_access_splits_c_and_forces_bold_arcs():
    p = problem(memory=MemoryConfig(divisor=2, voltage=5.0))
    assert p.access_times == FIGURE1_ACCESS_TIMES | {7}
    segments = p.segments
    # c spans access times 3, 5, 7 -> split; top piece starts at 2 (not an
    # access step) so it is forced register-resident (bold in fig. 1c).
    assert [(s.start, s.end) for s in segments["c"]] == [
        (2, 3), (3, 5), (5, 7), (7, 8),
    ]
    assert segments["c"][0].forced
    assert not any(s.forced for s in segments["c"][1:])
    # e [5,6] ends at a non-access step -> forced entirely (bold).
    assert len(segments["e"]) == 1
    assert segments["e"][0].forced


def test_d_splittable_at_5():
    # "we could have also split variables c and d into two segments,
    # defined from control steps 3 to 5 and from 5 to 7"
    p = problem(memory=MemoryConfig(divisor=2, voltage=5.0))
    d_segments = p.segments["d"]
    assert [(s.start, s.end) for s in d_segments][0] == (3, 5)


def test_forced_arcs_carry_flow():
    p = problem(memory=MemoryConfig(divisor=2, voltage=5.0))
    allocation = allocate(p)
    for name, segments in p.segments.items():
        for seg in segments:
            if seg.forced:
                assert seg.key in allocation.residency, (
                    f"forced segment {seg.key} not register resident"
                )


def test_network_has_source_sink_and_segment_arcs():
    built = build_network(problem())
    assert built.network.has_node(SOURCE)
    assert built.network.has_node(SINK)
    segment_arcs = [
        arc
        for arc in built.network.arcs
        if arc.data and arc.data[0] == "segment"
    ]
    assert len(segment_arcs) == 5  # one per single-read variable
    assert all(arc.capacity == 1 for arc in segment_arcs)
