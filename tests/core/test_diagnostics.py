"""Tests for infeasibility diagnostics."""

import pytest

from repro.core.diagnostics import (
    diagnose,
    forced_density_profile,
    minimum_feasible_registers,
)
from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig
from tests.conftest import make_lifetime


def overloaded_problem(registers=1):
    # Two forced (fully interior) lifetimes overlap: need 2 registers.
    # w is aligned with the access grid {1, 7} and stays unforced.
    lifetimes = {
        "u": make_lifetime("u", 2, 4),
        "v": make_lifetime("v", 2, 4),
        "w": make_lifetime("w", 1, 7),
    }
    return AllocationProblem(
        lifetimes,
        registers,
        6,
        memory=MemoryConfig(divisor=6, voltage=2.0, offset=1),
    )


def test_diagnose_infeasible():
    report = diagnose(overloaded_problem(1))
    assert not report.feasible
    assert report.forced_density == 2
    assert report.overload_steps  # the half-points where 2 > 1
    assert set(report.forced_at_peak) == {"u", "v"}
    assert report.minimum_registers == 2
    assert "infeasible" in report.summary()
    assert "needs R>=2" in report.summary()


def test_diagnose_feasible():
    report = diagnose(overloaded_problem(2))
    assert report.feasible
    assert report.overload_steps == ()
    assert "feasible" in report.summary()


def test_minimum_registers_unrestricted_is_zero():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    problem = AllocationProblem(lifetimes, 0, 3)
    assert minimum_feasible_registers(problem) == 0
    assert diagnose(problem).feasible


def test_minimum_registers_matches_forced_density_when_connectable():
    problem = overloaded_problem(1)
    assert minimum_feasible_registers(problem) == 2
    fixed = problem.with_options(register_count=2)
    assert diagnose(fixed).feasible


def test_minimum_registers_single_variable():
    # A lone forced lifetime: the minimum is exactly one register.
    lifetimes = {"u": make_lifetime("u", 2, 4)}
    problem = AllocationProblem(
        lifetimes,
        0,
        6,
        memory=MemoryConfig(divisor=6, voltage=2.0, offset=1),
    )
    assert minimum_feasible_registers(problem) == 1
    assert not diagnose(problem).feasible


def test_minimum_registers_on_already_feasible_instance():
    # R=2 satisfies the forced density of 2; the lower bound is returned
    # without any binary search above it.
    problem = overloaded_problem(2)
    assert minimum_feasible_registers(problem) == 2
    report = diagnose(problem)
    assert report.feasible
    assert report.minimum_registers == 2


def test_diagnose_without_forced_segments():
    # Unrestricted memory, no pins: nothing is forced, any R works.
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 2, 5),
    }
    problem = AllocationProblem(lifetimes, 1, 5)
    report = diagnose(problem)
    assert report.feasible
    assert report.forced_density == 0
    assert report.overload_steps == ()
    assert report.forced_at_peak == ()
    assert report.minimum_registers == 0


def test_forced_density_profile_is_pure_and_complete():
    forced = forced_density_profile(overloaded_problem(1))
    assert forced.density == 2
    assert max(forced.profile) == 2
    assert forced.overload_steps == tuple(
        k for k, v in enumerate(forced.profile) if v > 1
    )
    assert forced.peak_variables == ("u", "v")


def test_forced_density_profile_empty_when_unrestricted():
    problem = AllocationProblem({"a": make_lifetime("a", 1, 3)}, 1, 3)
    forced = forced_density_profile(problem)
    assert forced.density == 0
    assert forced.overload_steps == ()
    assert forced.peak_variables == ()


def test_diagnose_counts_explicit_pins():
    lifetimes = {
        "a": make_lifetime("a", 1, 4),
        "b": make_lifetime("b", 2, 5),
    }
    problem = AllocationProblem(
        lifetimes,
        1,
        5,
        forced_segments=frozenset({("a", 0), ("b", 0)}),
    )
    report = diagnose(problem)
    assert not report.feasible
    assert report.forced_density == 2
    assert report.minimum_registers == 2
