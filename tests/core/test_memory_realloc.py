"""Tests for the second-pass memory reallocation."""

import pytest

from repro.core.memory_realloc import reallocate_memory
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, PairwiseSwitchingModel
from tests.conftest import make_lifetime


def memory_heavy_allocation(model=None):
    lifetimes = {
        "a": make_lifetime("a", 1, 3, trace=(0b0000,)),
        "b": make_lifetime("b", 3, 5, trace=(0b0001,)),
        "c": make_lifetime("c", 1, 3, trace=(0b1111,)),
        "d": make_lifetime("d", 3, 5, trace=(0b1110,)),
        "e": make_lifetime("e", 1, 5, trace=(0b1010,)),
    }
    problem = AllocationProblem(
        lifetimes, 1, 5, energy_model=model or ActivityEnergyModel()
    )
    return allocate(problem)


def test_layout_uses_minimum_addresses():
    allocation = memory_heavy_allocation()
    layout = reallocate_memory(allocation)
    # Register takes one chain; the rest (density 2 in memory) packs into
    # exactly 2 addresses.
    assert layout.address_count == allocation.address_count
    assert set(layout.addresses) == set(allocation.memory_addresses)


def test_layout_minimises_switching():
    allocation = memory_heavy_allocation()
    layout = reallocate_memory(allocation)
    # a-b and c-d are the Hamming-close pairings (distance 1 vs 4/5); the
    # flow must not pair a with d or c with b.
    addr = layout.addresses
    memory = set(addr)
    if {"a", "b"} <= memory:
        assert addr["a"] == addr["b"]
    if {"c", "d"} <= memory:
        assert addr["c"] == addr["d"]


def test_layout_switching_no_worse_than_left_edge_order():
    allocation = memory_heavy_allocation()
    model = ActivityEnergyModel()
    layout = reallocate_memory(allocation, model)
    # Recompute switching for the first-pass left-edge addresses.
    by_address: dict[int, list] = {}
    for name, address in allocation.memory_addresses.items():
        by_address.setdefault(address, []).append(
            allocation.problem.lifetimes[name]
        )
    naive = 0.0
    for chain in by_address.values():
        chain.sort(key=lambda lt: lt.start)
        prev = None
        for lt in chain:
            naive += model.reg_write(
                lt.variable, prev.variable if prev else None
            )
            prev = lt
    assert layout.switching_energy <= naive + 1e-9


def test_empty_memory_layout():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    allocation = allocate(AllocationProblem(lifetimes, 1, 3))
    layout = reallocate_memory(allocation)
    assert layout.addresses == {}
    assert layout.address_count == 0
    assert layout.switching_energy == 0.0


def test_custom_pairwise_model():
    allocation = memory_heavy_allocation()
    model = PairwiseSwitchingModel({("a", "b"): 0.0, ("c", "d"): 0.0},
                                   default_activity=1.0)
    layout = reallocate_memory(allocation, model)
    addr = layout.addresses
    if {"a", "b"} <= set(addr):
        assert addr["a"] == addr["b"]
