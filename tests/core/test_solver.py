"""Tests for the end-to-end allocator."""

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, MemoryConfig, StaticEnergyModel
from repro.exceptions import InfeasibleFlowError
from tests.conftest import make_lifetime


def five_var_problem(register_count, **options):
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 3),
        "d": make_lifetime("d", 3, 8, live_out=True),
        "e": make_lifetime("e", 4, 5),
        "c": make_lifetime("c", 5, 8, live_out=True),
    }
    return AllocationProblem(
        lifetimes,
        register_count,
        7,
        energy_model=options.pop("energy_model", StaticEnergyModel()),
        **options,
    )


def test_zero_registers_all_memory():
    allocation = allocate(five_var_problem(0))
    assert allocation.chains == []
    assert allocation.report.reg_accesses == 0
    assert allocation.report.mem_accesses == 10  # 5 writes + 5 reads
    assert set(allocation.memory_addresses) == {"a", "b", "c", "d", "e"}


def test_enough_registers_no_memory():
    allocation = allocate(five_var_problem(2))
    assert allocation.report.mem_accesses == 0
    assert allocation.memory_addresses == {}
    assert allocation.registers_used == 2


def test_extra_registers_left_unused():
    allocation = allocate(five_var_problem(4))
    assert allocation.unused_registers == 2
    assert allocation.registers_used == 2


def test_objective_monotone_in_registers():
    energies = [
        allocate(five_var_problem(r)).objective for r in range(0, 4)
    ]
    assert energies == sorted(energies, reverse=True)
    assert energies[2] == energies[3]  # saturates at density


def test_chains_are_time_ordered_and_disjoint():
    allocation = allocate(five_var_problem(2))
    seen = set()
    for chain in allocation.chains:
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.end <= later.start
        for seg in chain:
            assert seg.key not in seen
            seen.add(seg.key)


def test_residency_matches_chains():
    allocation = allocate(five_var_problem(1))
    for register, chain in enumerate(allocation.chains):
        for seg in chain:
            assert allocation.residency[seg.key] == register
    for name in allocation.problem.lifetimes:
        in_reg = allocation.in_register(name)
        in_mem = name in allocation.memory_addresses
        assert in_reg != in_mem  # single-read vars: exactly one home


def test_energy_identity_flow_vs_accounting():
    # allocate(validate=True) enforces objective == recomputed energy; run
    # across models and register counts.
    for model in (StaticEnergyModel(), ActivityEnergyModel()):
        for r in range(4):
            allocation = allocate(
                five_var_problem(r, energy_model=model), validate=True
            )
            assert allocation.report.total_energy == pytest.approx(
                allocation.objective
            )


def test_infeasible_forced_density_raises():
    # Two forced (interior) lifetimes overlap but only 1 register exists.
    lifetimes = {
        "u": make_lifetime("u", 2, 4),
        "v": make_lifetime("v", 2, 4),
    }
    problem = AllocationProblem(
        lifetimes,
        1,
        6,
        memory=MemoryConfig(divisor=6, voltage=2.0),
    )
    with pytest.raises(InfeasibleFlowError):
        allocate(problem)


def test_register_count_never_exceeded():
    for r in (1, 2, 3):
        allocation = allocate(five_var_problem(r))
        assert allocation.registers_used <= r


def test_format_mentions_chains():
    allocation = allocate(five_var_problem(2))
    text = allocation.format()
    assert "R0:" in text
    assert "objective" in text
