"""Tests for port-constrained allocation (section 7 hook)."""

import pytest

from repro.analysis.ports import required_ports
from repro.core.ports import allocate_with_port_limit
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import CapacitanceTable, StaticEnergyModel
from repro.exceptions import AllocationError, InfeasibleFlowError
from tests.conftest import make_lifetime

#: A datapath with an *expensive* register file (reads 10, writes 20 at
#: nominal supply vs memory's 5/10): the unconstrained optimum then keeps
#: values in memory even when registers are free, so the port legalizer
#: has real work and real headroom.
EXPENSIVE_REGS = StaticEnergyModel(
    table=CapacitanceTable(reg_read=0.4, reg_write=0.8)
)


def crowded_instance():
    """Three memory-friendly variables all read at step 5."""
    return {
        "a": make_lifetime("a", 1, 5),
        "b": make_lifetime("b", 2, 5),
        "c": make_lifetime("c", 3, 5),
    }


def test_already_legal_returns_round_one():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    problem = AllocationProblem(lifetimes, 1, 3)
    result = allocate_with_port_limit(problem, max_mem_ports=2)
    assert result.rounds == 1
    assert result.pinned == frozenset()
    assert result.energy_overhead == 0.0


def test_legalizer_reduces_read_port_pressure():
    problem = AllocationProblem(
        crowded_instance(), 4, 5, energy_model=EXPENSIVE_REGS
    )
    unconstrained = allocate(problem)
    before = required_ports(unconstrained).mem_rw_ports
    assert before == 3  # all three reads collide at step 5
    result = allocate_with_port_limit(problem, max_mem_ports=2)
    assert result.mem_ports_used <= 2
    assert result.pinned  # something had to be forced into registers
    assert result.energy_overhead > 0.0  # registers are the dear option


def test_tighter_budget_pins_more():
    problem = AllocationProblem(
        crowded_instance(), 4, 5, energy_model=EXPENSIVE_REGS
    )
    two_ports = allocate_with_port_limit(problem, max_mem_ports=2)
    one_port = allocate_with_port_limit(problem, max_mem_ports=1)
    assert one_port.mem_ports_used <= 1
    assert len(one_port.pinned) > len(two_ports.pinned)
    assert one_port.energy_overhead >= two_ports.energy_overhead


def test_pins_are_register_resident():
    problem = AllocationProblem(
        crowded_instance(), 4, 5, energy_model=EXPENSIVE_REGS
    )
    result = allocate_with_port_limit(problem, max_mem_ports=1)
    for key in result.pinned:
        assert key in result.allocation.residency


def test_unachievable_limit_raises():
    # One register can absorb only one of the overlapping variables; the
    # other two still collide at step 5.
    problem = AllocationProblem(
        crowded_instance(), 1, 5, energy_model=EXPENSIVE_REGS
    )
    with pytest.raises(InfeasibleFlowError, match="cannot reduce"):
        allocate_with_port_limit(problem, max_mem_ports=1)


def test_bad_budget_rejected():
    problem = AllocationProblem(crowded_instance(), 1, 5)
    with pytest.raises(AllocationError):
        allocate_with_port_limit(problem, max_mem_ports=0)


def test_overhead_is_price_of_constraint():
    problem = AllocationProblem(
        crowded_instance(), 4, 5, energy_model=EXPENSIVE_REGS
    )
    free = allocate(problem)
    result = allocate_with_port_limit(problem, max_mem_ports=1)
    assert result.allocation.objective == pytest.approx(
        free.objective + result.energy_overhead
    )


def test_forced_segments_round_trip_through_problem():
    lifetimes = crowded_instance()
    problem = AllocationProblem(
        lifetimes, 2, 5, forced_segments=frozenset({("a", 0)})
    )
    allocation = allocate(problem)
    assert ("a", 0) in allocation.residency


def test_unknown_forced_segment_rejected():
    problem = AllocationProblem(
        crowded_instance(), 2, 5,
        forced_segments=frozenset({("ghost", 0)}),
    )
    from repro.exceptions import GraphError

    with pytest.raises(GraphError, match="unknown segments"):
        allocate(problem)
