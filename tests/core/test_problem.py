"""Tests for the AllocationProblem container."""

import pytest

from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig, StaticEnergyModel
from repro.exceptions import AllocationError
from repro.ir.builder import BlockBuilder
from repro.scheduling.list_scheduler import list_schedule
from tests.conftest import make_lifetime


def lifetimes():
    return {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, (4, 6)),
    }


def test_basic_construction_and_density():
    p = AllocationProblem(lifetimes(), 2, 6)
    assert p.max_density == 2
    assert p.density == [0, 1, 2, 1, 1, 1, 0]
    assert p.density_regions == [(2, 2)]


def test_segments_respect_options():
    p = AllocationProblem(lifetimes(), 2, 6)
    assert len(p.segments["b"]) == 2  # split at the interior read
    unsplit = p.with_options(split_at_reads=False)
    assert len(unsplit.segments["b"]) == 1


def test_access_times_from_memory_config():
    p = AllocationProblem(
        lifetimes(), 2, 6, memory=MemoryConfig(divisor=2, voltage=3.3)
    )
    assert p.access_times == frozenset({1, 3, 5, 7})
    free = AllocationProblem(lifetimes(), 2, 6)
    assert free.access_times is None


def test_constant_energy():
    model = StaticEnergyModel()
    p = AllocationProblem(lifetimes(), 2, 6, energy_model=model)
    # a: 1 write + 1 read; b: 1 write + 2 reads.
    assert p.constant_energy() == pytest.approx(2 * 10.0 + 3 * 5.0)


def test_negative_register_count_rejected():
    with pytest.raises(AllocationError):
        AllocationProblem(lifetimes(), -1, 6)


def test_mismatched_key_rejected():
    bad = {"zzz": make_lifetime("a", 1, 3)}
    with pytest.raises(AllocationError, match="does not match"):
        AllocationProblem(bad, 1, 6)


def test_lifetime_past_block_end_rejected():
    bad = {"a": make_lifetime("a", 1, 9)}
    with pytest.raises(AllocationError, match="past the block end"):
        AllocationProblem(bad, 1, 6)


def test_from_schedule():
    b = BlockBuilder("k")
    x = b.input("x")
    y = b.input("y")
    z = b.add(x, y, name="z")
    b.output(z)
    schedule = list_schedule(b.build())
    p = AllocationProblem.from_schedule(schedule, register_count=2)
    assert set(p.lifetimes) == {"x", "y", "z"}
    assert p.horizon == schedule.length


def test_with_options_copies():
    p = AllocationProblem(lifetimes(), 2, 6)
    q = p.with_options(register_count=5)
    assert q.register_count == 5
    assert p.register_count == 2
