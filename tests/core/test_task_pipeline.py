"""Tests for application-level (task graph) allocation."""

import pytest

from repro.core.task_pipeline import allocate_task_graph
from repro.energy import ActivityEnergyModel
from repro.ir.task_graph import Task, TaskGraph
from repro.workloads import dct4, fir_filter


def app_graph() -> TaskGraph:
    graph = TaskGraph("frontend")
    graph.add_task(Task("filter", fir_filter(4), rate=4))
    graph.add_task(Task("transform", dct4(), rate=1))
    graph.add_edge("filter", "transform")
    return graph


def test_every_task_allocated():
    result = allocate_task_graph(app_graph(), register_count=4)
    assert set(result.results) == {"filter", "transform"}
    for pipeline_result in result.results.values():
        assert pipeline_result.total_energy > 0


def test_energy_per_frame_is_rate_weighted():
    result = allocate_task_graph(app_graph(), register_count=4)
    expected = (
        4 * result.results["filter"].total_energy
        + 1 * result.results["transform"].total_energy
    )
    assert result.energy_per_frame == pytest.approx(expected)


def test_options_forwarded_to_every_task():
    result = allocate_task_graph(
        app_graph(),
        register_count=3,
        energy_model=ActivityEnergyModel(),
        graph_style="all_pairs",
    )
    for pipeline_result in result.results.values():
        assert pipeline_result.problem.graph_style == "all_pairs"
        assert pipeline_result.problem.register_count == 3


def test_summary_mentions_tasks_and_total():
    result = allocate_task_graph(app_graph(), register_count=4)
    text = result.summary()
    assert "filter" in text
    assert "transform" in text
    assert "frame total" in text


def test_more_registers_never_hurt_the_frame():
    small = allocate_task_graph(app_graph(), register_count=2)
    large = allocate_task_graph(app_graph(), register_count=8)
    assert large.energy_per_frame <= small.energy_per_frame + 1e-9
