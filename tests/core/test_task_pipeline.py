"""Tests for application-level (task graph) allocation."""

import pytest

from repro.core.task_pipeline import allocate_task_graph
from repro.energy import ActivityEnergyModel
from repro.ir.task_graph import Task, TaskGraph
from repro.workloads import dct4, fir_filter


def app_graph() -> TaskGraph:
    graph = TaskGraph("frontend")
    graph.add_task(Task("filter", fir_filter(4), rate=4))
    graph.add_task(Task("transform", dct4(), rate=1))
    graph.add_edge("filter", "transform")
    return graph


def test_every_task_allocated():
    result = allocate_task_graph(app_graph(), register_count=4)
    assert set(result.results) == {"filter", "transform"}
    for pipeline_result in result.results.values():
        assert pipeline_result.total_energy > 0


def test_energy_per_frame_is_rate_weighted():
    result = allocate_task_graph(app_graph(), register_count=4)
    expected = (
        4 * result.results["filter"].total_energy
        + 1 * result.results["transform"].total_energy
    )
    assert result.energy_per_frame == pytest.approx(expected)


def test_options_forwarded_to_every_task():
    result = allocate_task_graph(
        app_graph(),
        register_count=3,
        energy_model=ActivityEnergyModel(),
        graph_style="all_pairs",
    )
    for pipeline_result in result.results.values():
        assert pipeline_result.problem.graph_style == "all_pairs"
        assert pipeline_result.problem.register_count == 3


def test_summary_mentions_tasks_and_total():
    result = allocate_task_graph(app_graph(), register_count=4)
    text = result.summary()
    assert "filter" in text
    assert "transform" in text
    assert "frame total" in text


def test_more_registers_never_hurt_the_frame():
    small = allocate_task_graph(app_graph(), register_count=2)
    large = allocate_task_graph(app_graph(), register_count=8)
    assert large.energy_per_frame <= small.energy_per_frame + 1e-9


# ----------------------------------------------------------------------
# Processing-order and reconciliation properties (DAG workloads)
# ----------------------------------------------------------------------

def test_energy_is_independent_of_task_insertion_order():
    # The pipeline walks tasks in topological order, but each block is
    # allocated independently — so a graph with several valid topological
    # orders must price the same no matter how it was assembled.
    forward = TaskGraph("order")
    backward = TaskGraph("order")
    tasks = [
        ("a", fir_filter(3), 1),
        ("b", fir_filter(4), 2),
        ("c", dct4(), 1),
        ("d", fir_filter(5), 3),
    ]
    for name, block, rate in tasks:
        forward.add_task(Task(name, block, rate=rate))
    for name, block, rate in reversed(tasks):
        backward.add_task(Task(name, block, rate=rate))
    for graph in (forward, backward):
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")  # b and c are order-ambiguous peers
        graph.add_edge("b", "d")
        graph.add_edge("c", "d")

    left = allocate_task_graph(forward, register_count=4)
    right = allocate_task_graph(backward, register_count=4)
    assert left.energy_per_frame == pytest.approx(right.energy_per_frame)
    for name in left.results:
        assert left.results[name].total_energy == pytest.approx(
            right.results[name].total_energy
        )


def eight_task_graph(seed: int = 99) -> TaskGraph:
    from repro.workloads import iir_biquad
    from repro.workloads.random_blocks import spawn_rng

    rng = spawn_rng(seed, "task-pipeline-8")
    factories = (
        lambda: fir_filter(rng.randint(3, 6)),
        lambda: iir_biquad(rng.randint(1, 2)),
        dct4,
    )
    graph = TaskGraph("eight")
    names = [f"t{i}" for i in range(8)]
    for name in names:
        factory = factories[rng.randrange(len(factories))]
        graph.add_task(Task(name, factory(), rate=rng.randint(1, 4)))
    # layered DAG: every task depends on one random earlier task
    for i in range(1, 8):
        graph.add_edge(names[rng.randrange(i)], names[i])
    return graph


def test_seeded_eight_task_graph_energy_reconciles():
    graph = eight_task_graph()
    result = allocate_task_graph(graph, register_count=4)
    assert set(result.results) == {t.name for t in graph.tasks}
    rebuilt = sum(
        graph.task(name).rate * pipeline_result.total_energy
        for name, pipeline_result in result.results.items()
    )
    assert result.energy_per_frame == pytest.approx(rebuilt)
    assert result.rates == {t.name: t.rate for t in graph.tasks}
    # determinism: the same seed prices identically on a second run
    again = allocate_task_graph(eight_task_graph(), register_count=4)
    assert again.energy_per_frame == pytest.approx(result.energy_per_frame)
