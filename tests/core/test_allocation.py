"""Tests for allocation extraction: addresses, intervals, reports."""

import pytest

from repro.core.allocation import assign_addresses, compute_report, memory_intervals
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, StaticEnergyModel
from tests.conftest import make_lifetime


def test_assign_addresses_left_edge_minimal():
    intervals = {
        "a": (1, 3),
        "b": (3, 5),  # reuses a's address (open windows)
        "c": (2, 4),  # overlaps both
    }
    addresses = assign_addresses(intervals)
    assert addresses["a"] == addresses["b"]
    assert addresses["c"] != addresses["a"]
    assert max(addresses.values()) + 1 == 2


def test_assign_addresses_empty():
    assert assign_addresses({}) == {}


def test_assign_addresses_deterministic():
    intervals = {"x": (1, 4), "y": (1, 4), "z": (4, 6)}
    first = assign_addresses(intervals)
    second = assign_addresses(dict(reversed(list(intervals.items()))))
    assert first == second


def test_memory_intervals_hull():
    lifetimes = {"v": make_lifetime("v", 1, (3, 6, 9))}
    problem = AllocationProblem(lifetimes, 0, 9)
    residency = {("v", 1): 0}  # middle segment in a register
    intervals = memory_intervals(problem, residency)
    # Hull of segments 0 [1,3] and 2 [6,9].
    assert intervals["v"] == (1, 9)


def test_memory_intervals_fully_registered_variable_absent():
    lifetimes = {"v": make_lifetime("v", 1, 3)}
    problem = AllocationProblem(lifetimes, 1, 3)
    assert memory_intervals(problem, {("v", 0): 0}) == {}


def test_compute_report_counts_spills():
    # Multi-read variable: first segment in a register, then evicted by w.
    lifetimes = {
        "v": make_lifetime("v", 1, (3, 6)),
        "w": make_lifetime("w", 3, 5),
    }
    problem = AllocationProblem(
        lifetimes, 1, 6, energy_model=StaticEnergyModel()
    )
    segs = problem.segments
    chains = [[segs["v"][0], segs["w"][0]]]
    report = compute_report(problem, chains)
    # v written to register (def write avoided) then spilled: 1 mem write.
    # v's second read from memory: 1 mem read.  w fully registered.
    assert report.mem_writes == 1
    assert report.mem_reads == 1
    assert report.reg_writes == 2
    assert report.reg_reads == 2


def test_compute_report_intra_transition_free():
    lifetimes = {"v": make_lifetime("v", 1, (3, 6))}
    problem = AllocationProblem(
        lifetimes, 1, 6, energy_model=StaticEnergyModel()
    )
    segs = problem.segments["v"]
    report = compute_report(problem, [[segs[0], segs[1]]])
    assert report.reg_writes == 1  # one entry, no rewrite between segments
    assert report.mem_accesses == 0
    assert report.reg_reads == 2


def test_report_activity_model_prev_variable_matters():
    a = make_lifetime("a", 1, 3, trace=(0b0,))
    b = make_lifetime("b", 3, 5, trace=(0b1111,))
    problem = AllocationProblem(
        {"a": a, "b": b}, 1, 5, energy_model=ActivityEnergyModel()
    )
    allocation = allocate(problem)
    [chain] = allocation.chains
    assert [seg.name for seg in chain] == ["a", "b"]
    # b's register write pays H(a, b) = 4 bits.
    per_bit = ActivityEnergyModel().table.energy(
        ActivityEnergyModel().table.reg_bit, 5.0
    )
    assert allocation.report.reg_write_energy == pytest.approx(
        8 * per_bit + 4 * per_bit  # start 0.5*16 + handoff 4 bits
    )


def test_storage_locations_property():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 4),
        "c": make_lifetime("c", 3, 6),
    }
    allocation = allocate(AllocationProblem(lifetimes, 1, 6))
    assert (
        allocation.storage_locations
        == allocation.registers_used + allocation.address_count
    )
