"""Tests for the generic interval-chaining flow."""

import pytest

from repro.core.chain_flow import optimal_interval_chains
from repro.exceptions import AllocationError, InfeasibleFlowError
from tests.conftest import make_lifetime


def unit_cost(prev, nxt):
    return 0.0 if prev is None else 1.0


def test_empty_input():
    result = optimal_interval_chains([], 5, unit_cost)
    assert result.chains == []
    assert result.total_cost == 0.0


def test_single_interval_single_chain():
    result = optimal_interval_chains(
        [make_lifetime("a", 1, 3)], 3, unit_cost
    )
    assert [[lt.name for lt in c] for c in result.chains] == [["a"]]


def test_chains_cover_all_when_forced():
    intervals = [
        make_lifetime("a", 1, 3),
        make_lifetime("b", 3, 5),
        make_lifetime("c", 2, 4),
    ]
    result = optimal_interval_chains(intervals, 5, unit_cost)
    names = sorted(lt.name for c in result.chains for lt in c)
    assert names == ["a", "b", "c"]
    assert result.chain_count == 2  # density


def test_minimises_pair_cost():
    costs = {("a", "b"): 5.0, ("a", "c"): 1.0}

    def pair_cost(prev, nxt):
        if prev is None:
            return 0.0
        return costs.get((prev.name, nxt.name), 10.0)

    intervals = [
        make_lifetime("a", 1, 3),
        make_lifetime("b", 3, 5),
        make_lifetime("c", 3, 5),
    ]
    result = optimal_interval_chains(intervals, 5, pair_cost)
    # a chains with c (cost 1); b starts its own chain.
    assert result.chain_of("a") == result.chain_of("c")
    assert result.chain_of("a") != result.chain_of("b")
    assert result.total_cost == pytest.approx(1.0)


def test_infeasible_chain_count():
    intervals = [
        make_lifetime("a", 1, 4),
        make_lifetime("b", 2, 5),
    ]
    with pytest.raises(InfeasibleFlowError):
        optimal_interval_chains(
            intervals, 5, unit_cost, chain_count=1, force_all=True
        )


def test_unknown_style_rejected():
    with pytest.raises(AllocationError):
        optimal_interval_chains(
            [make_lifetime("a", 1, 2)], 2, unit_cost, style="nope"
        )


def test_chain_of_unknown_interval():
    result = optimal_interval_chains(
        [make_lifetime("a", 1, 3)], 3, unit_cost
    )
    with pytest.raises(AllocationError):
        result.chain_of("ghost")


def test_all_pairs_style_can_reduce_cost():
    # a [1,2] -> b [4,6] skips the peak c [2,4]: only the all-pairs rule
    # may pair them directly.
    def pair_cost(prev, nxt):
        if prev is None:
            return 0.0
        return 0.0 if (prev.name, nxt.name) == ("a", "b") else 3.0

    intervals = [
        make_lifetime("a", 1, 2),
        make_lifetime("c", 2, 4),
        make_lifetime("b", 4, 6),
    ]
    adjacent = optimal_interval_chains(
        intervals, 6, pair_cost, style="adjacent"
    )
    all_pairs = optimal_interval_chains(
        intervals, 6, pair_cost, style="all_pairs"
    )
    assert all_pairs.total_cost <= adjacent.total_cost


def test_extra_chains_allowed_without_force():
    intervals = [make_lifetime("a", 1, 3)]
    result = optimal_interval_chains(
        intervals, 3, unit_cost, chain_count=3, force_all=False
    )
    # One real chain; the other two units ride the bypass.
    assert len(result.chains) <= 1
