"""Tests for the uniform cost assignment and its equivalence to the
paper's literal equations (3)-(10)."""

import pytest

from repro.core.costs import handoff_cost, intra_cost, segment_cost
from repro.core import paper_equations as eq
from repro.energy import ActivityEnergyModel, StaticEnergyModel
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Segment

V1 = DataVariable("v1", 16, (0b1010,))
V2 = DataVariable("v2", 16, (0b0101,))


def seg(
    variable,
    index=0,
    start=1,
    end=3,
    reads=(3,),
    is_first=True,
    is_last=True,
    access_cut=False,
):
    return Segment(
        variable,
        index,
        start,
        end,
        reads=reads,
        is_first=is_first,
        is_last=is_last,
        starts_at_access_cut=access_cut,
    )


@pytest.fixture(params=["static", "activity"])
def model(request):
    if request.param == "static":
        return StaticEnergyModel()
    return ActivityEnergyModel()


def path_cost_single_read(model, source_is_last, target_is_first):
    """Uniform cost of (exit arc of v1) + (entry arc into v2) + v2 segment,
    matching the paper's per-handoff accounting for single-read pieces."""
    s1 = seg(V1, is_last=source_is_last, index=0)
    s2 = seg(
        V2,
        index=0 if target_is_first else 1,
        is_first=target_is_first,
        start=3,
        end=5,
        reads=(5,),
    )
    return handoff_cost(model, s1, s2)


def test_eq3_segment_arcs_shiftable_to_zero(model):
    # The uniform decomposition moves the read credit onto the segment
    # arc; the paper's eq. (3) keeps it at zero.  Equivalence is checked
    # via whole-arc sums in the tests below.
    s = seg(V1)
    assert segment_cost(model, s) == pytest.approx(
        s.read_count * (model.reg_read(V1) - model.mem_read(V1))
    )


def test_eq4_eq10_last_into_first(model):
    s1 = seg(V1, is_last=True)
    uniform = handoff_cost(model, s1, seg(V2)) + segment_cost(model, s1) - (
        seg(V1).read_count * (model.reg_read(V1) - model.mem_read(V1))
    ) + (model.reg_read(V1) - model.mem_read(V1))
    # For a single-read v1 the shifted credit equals the segment cost, so:
    combined = handoff_cost(model, s1, seg(V2)) + (
        model.reg_read(V1) - model.mem_read(V1)
    )
    assert combined == pytest.approx(eq.eq4_handoff(model, V1, V2))
    assert combined == pytest.approx(eq.eq10_last_into_first(model, V1, V2))
    assert uniform == pytest.approx(combined)


def test_eq6_spill_into_first(model):
    s1 = seg(V1, is_last=False)
    combined = handoff_cost(model, s1, seg(V2)) + (
        model.reg_read(V1) - model.mem_read(V1)
    )
    assert combined == pytest.approx(eq.eq6_spill_into_first(model, V1, V2))


def test_eq7_consistent_form(model):
    s1 = seg(V1, is_last=False)
    s2 = seg(V2, index=1, is_first=False, start=3, end=5, reads=(5,))
    combined = handoff_cost(model, s1, s2) + (
        model.reg_read(V1) - model.mem_read(V1)
    )
    assert combined == pytest.approx(eq.eq7_consistent(model, V1, V2))
    # The printed form omits the read credit; document the delta.
    assert eq.eq7_literal(model, V1, V2) - combined == pytest.approx(
        model.mem_read(V1) - model.reg_read(V1)
    )


def test_eq8_last_into_mid(model):
    s1 = seg(V1, is_last=True)
    s2 = seg(V2, index=1, is_first=False, start=3, end=5, reads=(5,))
    combined = handoff_cost(model, s1, s2) + (
        model.reg_read(V1) - model.mem_read(V1)
    )
    assert combined == pytest.approx(eq.eq8_last_into_mid(model, V1, V2))


def test_eq9_intra(model):
    first = seg(V1, index=0, is_last=False)
    second = seg(V1, index=1, is_first=False, start=3, end=5, reads=(5,))
    # Uniform: the intra arc is free, the credit lives on the first
    # segment's arc.
    combined = intra_cost(model, first, second) + (
        model.reg_read(V1) - model.mem_read(V1)
    )
    assert combined == pytest.approx(eq.eq9_intra(model, V1))


def test_access_cut_entry_charges_reload(model):
    s1 = seg(V1, is_last=True)
    s2 = seg(
        V2,
        index=1,
        is_first=False,
        start=3,
        end=5,
        reads=(5,),
        access_cut=True,
    )
    with_reload = handoff_cost(model, s1, s2)
    s2_read_start = seg(V2, index=1, is_first=False, start=3, end=5, reads=(5,))
    without = handoff_cost(model, s1, s2_read_start)
    assert with_reload - without == pytest.approx(model.mem_read(V2))


def test_source_entry_costs(model):
    s2 = seg(V2)
    cost = handoff_cost(model, None, s2)
    assert cost == pytest.approx(
        -model.mem_write(V2) + model.reg_write(V2, None)
    )


def test_sink_exit_costs(model):
    final = seg(V1, is_last=True)
    nonfinal = seg(V1, is_last=False)
    assert handoff_cost(model, final, None) == 0.0
    assert handoff_cost(model, nonfinal, None) == pytest.approx(
        model.mem_write(V1)
    )


def test_segment_without_reads_costs_nothing(model):
    s = seg(V1, reads=(), is_last=False)
    assert segment_cost(model, s) == 0.0


def test_eq5_is_activity_form_of_eq4():
    model = ActivityEnergyModel()
    assert eq.eq5_handoff_activity(model, V1, V2) == pytest.approx(
        eq.eq4_handoff(model, V1, V2)
    )
    # With the activity model, reg_read is free so eq. (4) reduces to the
    # printed eq. (5): -Ew_m - Er_m + H * C.
    hamming_term = model.reg_write(V2, V1)
    assert eq.eq4_handoff(model, V1, V2) == pytest.approx(
        -model.mem_write(V2) - model.mem_read(V1) + hamming_term
    )
