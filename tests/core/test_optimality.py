"""Optimality of the flow allocator against exhaustive enumeration.

On small instances (unsplit single/multi-read lifetimes, unrestricted
memory, all-pairs compatibility) every legal partition-plus-binding can be
enumerated and accounted with the same rules the allocator uses; the flow
optimum must match the enumerated minimum exactly.  This is the strongest
independent check of the whole formulation: graph construction, arc costs,
solver, and accounting all have to be right simultaneously.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.common import report_for_partition
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, StaticEnergyModel
from repro.lifetimes.intervals import Lifetime
from repro.workloads.random_blocks import random_lifetimes


def enumerate_minimum(
    lifetimes: dict[str, Lifetime], register_count: int, model
) -> float:
    """Exhaustive minimum energy over all chain packings."""
    order = sorted(
        lifetimes.values(), key=lambda lt: (lt.start, lt.end, lt.name)
    )
    best = float("inf")

    def recurse(index: int, chains: list[list[Lifetime]]):
        nonlocal best
        if index == len(order):
            report = report_for_partition(lifetimes, chains, model)
            best = min(best, report.total_energy)
            return
        lt = order[index]
        # Choice 1: memory.
        recurse(index + 1, chains)
        # Choice 2: append to a compatible chain.
        for chain in chains:
            if chain[-1].end <= lt.start:
                chain.append(lt)
                recurse(index + 1, chains)
                chain.pop()
        # Choice 3: open a new chain.
        if len(chains) < register_count:
            chains.append([lt])
            recurse(index + 1, chains)
            chains.pop()

    recurse(0, [])
    return best


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("model_kind", ["static", "activity"])
def test_flow_matches_bruteforce(seed, model_kind):
    rng = random.Random(seed)
    lifetimes = random_lifetimes(
        rng,
        count=rng.randint(3, 6),
        horizon=8,
        multi_read_fraction=0.3,
        traced=(model_kind == "activity"),
    )
    register_count = rng.randint(1, 2)
    model = (
        StaticEnergyModel()
        if model_kind == "static"
        else ActivityEnergyModel()
    )
    problem = AllocationProblem(
        lifetimes,
        register_count,
        8,
        energy_model=model,
        graph_style="all_pairs",
        split_at_reads=False,
    )
    allocation = allocate(problem)
    expected = enumerate_minimum(lifetimes, register_count, model)
    assert allocation.objective == pytest.approx(expected, abs=1e-6)


def test_flow_beats_or_ties_every_enumerated_solution_with_splits():
    """With splitting enabled the solution space only grows, so the flow
    optimum must be at most the unsplit enumerated minimum."""
    rng = random.Random(99)
    lifetimes = random_lifetimes(
        rng, count=5, horizon=8, multi_read_fraction=0.6
    )
    model = StaticEnergyModel()
    unsplit_best = enumerate_minimum(lifetimes, 2, model)
    problem = AllocationProblem(
        lifetimes,
        2,
        8,
        energy_model=model,
        graph_style="all_pairs",
        split_at_reads=True,
    )
    allocation = allocate(problem)
    assert allocation.objective <= unsplit_best + 1e-6
