"""Tests for the flow-network construction."""

import pytest

from repro.core.network_builder import SINK, SOURCE, build_network
from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig, StaticEnergyModel
from tests.conftest import make_lifetime


def simple_problem(**options):
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 3, 5),
        "c": make_lifetime("c", 2, 4),
    }
    defaults = dict(
        register_count=2, horizon=5, energy_model=StaticEnergyModel()
    )
    defaults.update(options)
    return AllocationProblem(lifetimes, **defaults)


def arcs_by_kind(network):
    kinds: dict[str, list] = {}
    for arc in network.arcs:
        kinds.setdefault(arc.data[0] if arc.data else "?", []).append(arc)
    return kinds


def test_every_segment_gets_an_arc():
    built = build_network(simple_problem())
    assert set(built.segment_arcs) == {("a", 0), ("b", 0), ("c", 0)}
    for arc in built.segment_arcs.values():
        assert arc.capacity == 1
        assert arc.lower == 0


def test_bypass_arc_present_by_default():
    built = build_network(simple_problem())
    kinds = arcs_by_kind(built.network)
    assert len(kinds.get("bypass", [])) == 1
    assert kinds["bypass"][0].capacity == 2


def test_bypass_arc_can_be_disabled():
    built = build_network(simple_problem(allow_unused_registers=False))
    kinds = arcs_by_kind(built.network)
    assert "bypass" not in kinds


def test_no_bypass_for_zero_registers():
    built = build_network(simple_problem(register_count=0))
    kinds = arcs_by_kind(built.network)
    assert "bypass" not in kinds


def test_intra_arcs_between_consecutive_segments():
    lifetimes = {"m": make_lifetime("m", 1, (3, 5, 7))}
    p = AllocationProblem(lifetimes, 1, 7)
    built = build_network(p)
    kinds = arcs_by_kind(built.network)
    intra = [
        (a.data[1].index, a.data[2].index) for a in kinds.get("intra", [])
    ]
    assert intra == [(0, 1), (1, 2)]


def test_all_pairs_has_at_least_adjacent_arcs():
    adjacent = build_network(simple_problem())
    all_pairs = build_network(simple_problem(graph_style="all_pairs"))

    def handoffs(built):
        return {
            (
                a.data[1].key if a.data[1] is not None else None,
                a.data[2].key if a.data[2] is not None else None,
            )
            for a in built.network.arcs
            if a.data and a.data[0] == "handoff"
        }

    assert handoffs(adjacent) <= handoffs(all_pairs)


def test_all_pairs_allows_peak_skip():
    # a [1,2], peak [2,4] via c, b [4,6]: a->b skips the peak — legal in
    # all_pairs, forbidden in the adjacent (paper) graph.
    lifetimes = {
        "a": make_lifetime("a", 1, 2),
        "c": make_lifetime("c", 2, 4),
        "b": make_lifetime("b", 4, 6),
    }
    def handoffs(style):
        p = AllocationProblem(lifetimes, 1, 6, graph_style=style)
        built = build_network(p)
        return {
            (a.data[1].name, a.data[2].name)
            for a in built.network.arcs
            if a.data
            and a.data[0] == "handoff"
            and a.data[1] is not None
            and a.data[2] is not None
        }

    assert ("a", "b") in handoffs("all_pairs")
    assert ("a", "b") not in handoffs("adjacent")
    # Peak-adjacent handoffs exist in both.
    assert ("a", "c") in handoffs("adjacent")
    assert ("c", "b") in handoffs("adjacent")


def test_same_step_handoff_allowed():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 3, 5),
    }
    p = AllocationProblem(lifetimes, 1, 5)
    built = build_network(p)
    pairs = {
        (a.data[1].name, a.data[2].name)
        for a in built.network.arcs
        if a.data and a.data[0] == "handoff" and a.data[1] and a.data[2]
    }
    assert ("a", "b") in pairs
    assert ("b", "a") not in pairs  # time-incompatible


def test_forced_segments_get_lower_bounds():
    lifetimes = {"v": make_lifetime("v", 2, 4)}
    p = AllocationProblem(
        lifetimes,
        1,
        6,
        memory=MemoryConfig(divisor=6, voltage=2.0, offset=1),
    )
    built = build_network(p)
    seg_arc = built.segment_arcs[("v", 0)]
    assert seg_arc.lower == 1


def test_spill_arcs_require_access_step():
    # v has reads at 3 and 6; under access {1,5} the first segment ends at
    # a non-access step (3), so no inter-variable handoff may leave it.
    lifetimes = {
        "v": make_lifetime("v", 1, (3, 6)),
        "w": make_lifetime("w", 3, 5),
    }
    restricted = AllocationProblem(
        lifetimes,
        1,
        6,
        memory=MemoryConfig(divisor=4, voltage=2.0, offset=1),
    )
    built = build_network(restricted)
    pairs = {
        (a.data[1].key, a.data[2].name)
        for a in built.network.arcs
        if a.data and a.data[0] == "handoff" and a.data[1] and a.data[2]
    }
    assert (("v", 0), "w") not in pairs

    free = AllocationProblem(lifetimes, 1, 6)
    built_free = build_network(free)
    pairs_free = {
        (a.data[1].key, a.data[2].name)
        for a in built_free.network.arcs
        if a.data and a.data[0] == "handoff" and a.data[1] and a.data[2]
    }
    assert (("v", 0), "w") in pairs_free


def test_flow_value_is_register_count():
    built = build_network(simple_problem(register_count=7))
    assert built.flow_value == 7
