"""Tests for the end-to-end pipeline."""

import pytest

from repro.core.pipeline import allocate_block, allocate_schedule
from repro.energy import ActivityEnergyModel, MemoryConfig
from repro.scheduling import ResourceSet, list_schedule
from repro.workloads import dct4, fir_filter


def test_allocate_block_runs_all_stages():
    result = allocate_block(fir_filter(4), register_count=4)
    assert result.schedule.length > 0
    assert result.allocation.problem.register_count == 4
    assert result.total_energy == result.allocation.objective
    # Variables exist in memory, so the second pass ran.
    if result.allocation.memory_addresses:
        assert result.memory_layout is not None
        assert set(result.memory_layout.addresses) == set(
            result.allocation.memory_addresses
        )


def test_reallocate_can_be_disabled():
    result = allocate_block(fir_filter(4), register_count=1, reallocate=False)
    assert result.memory_layout is None


def test_allocate_schedule_options_forwarded():
    schedule = list_schedule(dct4(), ResourceSet.typical_dsp())
    result = allocate_schedule(
        schedule,
        register_count=3,
        energy_model=ActivityEnergyModel(),
        graph_style="all_pairs",
        split_at_reads=False,
    )
    assert result.problem.graph_style == "all_pairs"
    assert not result.problem.split_at_reads
    assert isinstance(result.problem.energy_model, ActivityEnergyModel)


def test_memory_config_forwarded():
    schedule = list_schedule(dct4(), ResourceSet.typical_dsp())
    result = allocate_schedule(
        schedule,
        register_count=9,
        memory=MemoryConfig(divisor=2, voltage=3.3),
    )
    assert result.problem.memory.divisor == 2


def test_summary_text():
    result = allocate_block(dct4(), register_count=3)
    text = result.summary()
    assert "dct4" in text
    assert "max density" in text


def test_more_registers_never_hurt():
    block = fir_filter(5)
    energies = [
        allocate_block(block, register_count=r).total_energy
        for r in (1, 3, 6, 12)
    ]
    assert energies == sorted(energies, reverse=True)
