"""Hypothesis property tests for allocator invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import two_phase_allocate
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.energy import ActivityEnergyModel, MemoryConfig, StaticEnergyModel
from repro.exceptions import InfeasibleFlowError
from repro.lifetimes.intervals import density_profile
from repro.workloads.random_blocks import random_lifetimes

HORIZON = 10


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=10))
    registers = draw(st.integers(min_value=0, max_value=4))
    rng = random.Random(seed)
    lifetimes = random_lifetimes(
        rng, count=count, horizon=HORIZON, multi_read_fraction=0.35
    )
    return lifetimes, registers


@given(instances())
@settings(max_examples=60, deadline=None)
def test_solution_invariants(instance):
    lifetimes, registers = instance
    problem = AllocationProblem(
        lifetimes, registers, HORIZON, energy_model=StaticEnergyModel()
    )
    allocation = allocate(problem, validate=True)

    # Chains respect time and use each segment at most once.
    seen = set()
    for chain in allocation.chains:
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.end <= later.start
        for seg in chain:
            assert seg.key not in seen
            seen.add(seg.key)

    # Register budget respected; accounting is internally consistent.
    assert allocation.registers_used + allocation.unused_registers <= registers
    assert allocation.report.total_energy == pytest.approx(
        allocation.objective
    )

    # Every read happens exactly once somewhere.
    total_reads = sum(lt.read_count for lt in lifetimes.values())
    assert (
        allocation.report.reg_reads
        + allocation.report.mem_reads
        - extra_reloads(allocation)
        == total_reads
    )


def extra_reloads(allocation) -> int:
    # Without restricted access there are no reload reads.
    return 0


@given(instances())
@settings(max_examples=40, deadline=None)
def test_objective_monotone_in_register_count(instance):
    lifetimes, registers = instance
    problem = AllocationProblem(lifetimes, registers, HORIZON)
    more = problem.with_options(register_count=registers + 1)
    assert (
        allocate(more).objective <= allocate(problem).objective + 1e-9
    )


@given(instances())
@settings(max_examples=40, deadline=None)
def test_all_pairs_no_worse_than_adjacent(instance):
    lifetimes, registers = instance
    adjacent = AllocationProblem(lifetimes, registers, HORIZON)
    all_pairs = adjacent.with_options(graph_style="all_pairs")
    assert (
        allocate(all_pairs).objective
        <= allocate(adjacent).objective + 1e-9
    )


@given(instances())
@settings(max_examples=40, deadline=None)
def test_flow_no_worse_than_two_phase(instance):
    lifetimes, registers = instance
    if registers == 0:
        return
    model = StaticEnergyModel()
    problem = AllocationProblem(
        lifetimes,
        registers,
        HORIZON,
        energy_model=model,
        graph_style="all_pairs",
        split_at_reads=False,
    )
    flow = allocate(problem)
    baseline = two_phase_allocate(lifetimes, HORIZON, registers, model)
    assert flow.objective <= baseline.objective + 1e-9


@given(instances())
@settings(max_examples=40, deadline=None)
def test_memory_addresses_equal_memory_density(instance):
    lifetimes, registers = instance
    problem = AllocationProblem(lifetimes, registers, HORIZON)
    allocation = allocate(problem)
    from repro.core.allocation import memory_intervals

    intervals = memory_intervals(problem, allocation.residency)
    if not intervals:
        assert allocation.address_count == 0
        return
    from types import SimpleNamespace

    spans = [
        SimpleNamespace(start=start, end=end)
        for start, end in intervals.values()
    ]
    profile = density_profile(spans, HORIZON + 1)
    assert allocation.address_count == max(profile)


@given(instances(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_restricted_access_forced_segments_registered(instance, divisor):
    lifetimes, registers = instance
    problem = AllocationProblem(
        lifetimes,
        registers,
        HORIZON,
        memory=MemoryConfig(divisor=divisor, voltage=3.3),
    )
    try:
        allocation = allocate(problem, validate=True)
    except InfeasibleFlowError:
        return  # forced density exceeded R: a legal outcome
    for name, segments in problem.segments.items():
        for seg in segments:
            if seg.forced:
                assert seg.key in allocation.residency


@given(instances())
@settings(max_examples=30, deadline=None)
def test_activity_model_solutions_validate(instance):
    lifetimes, registers = instance
    problem = AllocationProblem(
        lifetimes, registers, HORIZON, energy_model=ActivityEnergyModel()
    )
    allocation = allocate(problem, validate=True)
    assert allocation.objective == pytest.approx(
        allocation.report.total_energy
    )
