"""Storage hierarchy structure: StorageSpec, StorageLevel, era chains."""

import pytest

from repro.energy import MemoryConfig
from repro.exceptions import AllocationError
from repro.core.storage import (
    StorageLevel,
    StorageSpec,
    bank_structures,
    banking_forced_keys,
    segment_bank_legal,
)
from repro.lifetimes.splitting import split_lifetime
from tests.conftest import make_lifetime


# ---------------------------------------------------------------------------
# StorageLevel
# ---------------------------------------------------------------------------

def test_level_validation():
    with pytest.raises(AllocationError):
        StorageLevel(name="x", kind="cache")
    with pytest.raises(AllocationError):
        StorageLevel(name="x", divisor=0)
    with pytest.raises(AllocationError):
        StorageLevel(name="x", offset=-1)
    with pytest.raises(AllocationError):
        StorageLevel(name="x", voltage=0.0)
    with pytest.raises(AllocationError):
        StorageLevel(name="x", capacity=-1)
    with pytest.raises(AllocationError):
        StorageLevel(name="x", ports=0)
    with pytest.raises(AllocationError):
        StorageLevel(name="x", access_scale=0.0)


def test_level_access_times_and_config():
    free = StorageLevel(name="m")
    assert not free.restricted
    assert free.access_times(8) is None

    level = StorageLevel(name="m", divisor=2, offset=1, voltage=3.3)
    assert level.restricted
    # Access steps include the live-out boundary one past the block.
    assert level.access_times(8) == frozenset({1, 3, 5, 7, 9})
    config = level.memory_config()
    assert (config.divisor, config.voltage, config.offset) == (2, 3.3, 1)

    reg = StorageLevel(name="rf", kind="register", divisor=4)
    assert reg.access_times(8) is None  # register level is never gated


def test_level_dict_round_trip():
    level = StorageLevel(
        name="bank1", capacity=3, ports=2, divisor=3, offset=2,
        voltage=2.5, access_scale=1.25, idle_energy=0.1, transfer_cost=0.5,
    )
    assert StorageLevel.from_dict(level.to_dict()) == level


# ---------------------------------------------------------------------------
# StorageSpec structure and validation
# ---------------------------------------------------------------------------

def test_spec_requires_register_then_banks():
    rf = StorageLevel(name="rf", kind="register")
    mem = StorageLevel(name="mem")
    with pytest.raises(AllocationError):
        StorageSpec(levels=(rf,))  # no banks
    with pytest.raises(AllocationError):
        StorageSpec(levels=(mem, rf))  # register not first
    with pytest.raises(AllocationError):
        StorageSpec(  # second register level
            levels=(rf, StorageLevel(name="rf2", kind="register"), mem)
        )
    with pytest.raises(AllocationError):
        StorageSpec(levels=(rf, mem, StorageLevel(name="mem")))  # dup name


def test_canonical_spec_is_degenerate():
    spec = StorageSpec.canonical(MemoryConfig(divisor=2, voltage=3.0))
    assert spec.is_degenerate
    assert spec.reference is spec.banks[0]
    config = spec.memory_config()
    assert (config.divisor, config.voltage) == (2, 3.0)
    assert spec.register_level.kind == "register"


def test_banked_constructor_staggers_offsets():
    spec = StorageSpec.banked(3, 2)
    assert [b.offset for b in spec.banks] == [1, 2, 1]
    assert all(b.divisor == 2 for b in spec.banks)
    assert not spec.is_degenerate

    flat = StorageSpec.banked(3, 2, stagger=False)
    assert [b.offset for b in flat.banks] == [1, 1, 1]


def test_banked_default_voltage_tracks_period():
    assert StorageSpec.banked(2, 1).reference.voltage == 5.0
    assert StorageSpec.banked(2, 2).reference.voltage == pytest.approx(3.162)


def test_banked_validation():
    with pytest.raises(AllocationError):
        StorageSpec.banked(0, 2)
    with pytest.raises(AllocationError):
        StorageSpec.banked(2, 2, voltages=[3.0])
    spec = StorageSpec.banked(2, 2, voltages=[3.0, 2.5])
    assert [b.voltage for b in spec.banks] == [3.0, 2.5]


def test_union_access_times():
    spec = StorageSpec.banked(2, 2)  # offsets 1 and 2: union covers all
    assert spec.union_access_times(6) == frozenset({1, 2, 3, 4, 5, 6, 7})
    flat = StorageSpec.banked(2, 2, stagger=False)
    assert flat.union_access_times(6) == frozenset({1, 3, 5, 7})
    # Any unrestricted bank makes the union unrestricted.
    assert StorageSpec.banked(2, 1).union_access_times(6) is None


def test_access_topology_ignores_costs():
    a = StorageSpec.banked(2, 2, voltages=[3.0, 3.0], capacity=1)
    b = StorageSpec.banked(2, 2, voltages=[2.5, 2.5], ports=1)
    c = StorageSpec.banked(2, 3)
    assert a.access_topology() == b.access_topology()
    assert a.access_topology() != c.access_topology()


def test_spec_dict_round_trip():
    spec = StorageSpec.banked(3, 2, ports=1, capacity=2)
    doc = spec.to_dict()
    assert doc["schema"] == "repro/storage-spec/v1"
    assert StorageSpec.from_dict(doc) == spec
    with pytest.raises(AllocationError):
        StorageSpec.from_dict({"schema": "repro/storage-spec/v9",
                               "levels": doc["levels"]})


# ---------------------------------------------------------------------------
# Era chains
# ---------------------------------------------------------------------------

def test_bank_structures_era_chains():
    spec = StorageSpec.banked(2, 2)
    banks = bank_structures(spec, 6)
    assert [b.index for b in banks] == [0, 1]
    assert banks[0].access_steps == (1, 3, 5, 7)
    assert banks[1].access_steps == (2, 4, 6)
    # era[k] counts access steps <= k, over 0 .. horizon + 1.
    assert banks[0].era == (0, 1, 1, 2, 2, 3, 3, 4)
    assert banks[1].era == (0, 0, 1, 1, 2, 2, 3, 3)
    assert banks[0].slot_count == 3


def test_bank_structures_unrestricted_bank():
    spec = StorageSpec.banked(2, 1)
    banks = bank_structures(spec, 6)
    assert all(b.access_steps is None and b.era is None for b in banks)
    assert banks[0].slot_count == 0


# ---------------------------------------------------------------------------
# Bank legality
# ---------------------------------------------------------------------------

def test_segment_bank_legal():
    lifetime = make_lifetime("v", 1, (3, 5))
    segment = split_lifetime(lifetime)[0]  # 1 -> 3, serves the read at 3
    odd = frozenset({1, 3, 5})
    even = frozenset({2, 4, 6})
    assert segment_bank_legal(lifetime, segment, None)
    assert segment_bank_legal(lifetime, segment, odd)
    # The even bank can neither be reached by step 1 nor serve read 3.
    assert not segment_bank_legal(lifetime, segment, even)


def test_banking_forced_keys_degenerate_is_empty():
    spec = StorageSpec.canonical(MemoryConfig(divisor=2))
    lifetimes = {"v": make_lifetime("v", 1, (3, 5))}
    access = spec.union_access_times(6)
    segments = {"v": split_lifetime(lifetimes["v"], access_times=access)}
    assert banking_forced_keys(spec, lifetimes, segments, 6) == frozenset()


def test_banking_forced_keys_flags_phase_straddlers():
    # Written at step 1 (bank 0's phase), read at step 2 (bank 1's
    # phase): legal under the union of both staggered period-2 banks,
    # legal in neither single bank — bank 0 cannot serve the read,
    # bank 1 cannot be reached before the segment starts.
    spec = StorageSpec.banked(2, 2)
    lifetimes = {"v": make_lifetime("v", 1, 2)}
    access = spec.union_access_times(6)
    segments = {"v": split_lifetime(lifetimes["v"], access_times=access)}
    assert not any(s.forced for s in segments["v"])
    forced = banking_forced_keys(spec, lifetimes, segments, 6)
    assert ("v", 0) in forced
