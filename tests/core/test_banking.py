"""Bank placement pass and the degenerate byte-identity pin.

The load-bearing regression here: solving any instance through a
*degenerate* (single-bank) :class:`StorageSpec` must reproduce the
classic two-level solve exactly — same objective, same residency, same
addresses — for every paper figure and every registry kernel.
"""

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.core.storage import StorageSpec
from repro.core.options import SolveOptions
from repro.core.pipeline import allocate_block
from repro.energy import MemoryConfig
from repro.exceptions import InfeasibleFlowError
from repro.workloads.registry import (
    FIGURE_NAMES,
    KERNEL_NAMES,
    figure_example,
    kernel_block,
)


def figure_problem(name, registers, divisor=1):
    lifetimes, horizon, _ = figure_example(name)
    return AllocationProblem(
        lifetimes,
        register_count=registers,
        horizon=horizon,
        memory=MemoryConfig(divisor=divisor),
    )


# ---------------------------------------------------------------------------
# Degenerate byte-identity (the API-redesign acceptance pin)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", FIGURE_NAMES)
@pytest.mark.parametrize("divisor", [1, 2])
def test_degenerate_spec_matches_classic_on_figures(name, divisor):
    plain = figure_problem(name, registers=2, divisor=divisor)
    spec = StorageSpec.canonical(plain.memory)
    classic = allocate(plain)
    banked = allocate(plain, SolveOptions(storage=spec))
    assert banked.objective == classic.objective  # exact, not approx
    assert banked.total_energy == classic.total_energy
    assert banked.residency == classic.residency
    assert banked.memory_addresses == classic.memory_addresses
    assert banked.report.mem_accesses == classic.report.mem_accesses
    assert banked.report.reg_accesses == classic.report.reg_accesses


@pytest.mark.parametrize("name", [n for n in KERNEL_NAMES if n != "random"])
def test_degenerate_spec_matches_classic_on_kernels(name):
    block = kernel_block(name, taps=4)
    classic = allocate_block(block, register_count=4)
    banked = allocate_block(
        block,
        register_count=4,
        options=SolveOptions(storage=StorageSpec.canonical()),
    )
    assert banked.allocation.objective == classic.allocation.objective
    assert banked.allocation.total_energy == classic.allocation.total_energy
    assert banked.allocation.residency == classic.allocation.residency


def test_degenerate_banking_attaches_zero_delta_assignment():
    problem = figure_problem("fig3", registers=2, divisor=2)
    allocation = allocate(
        problem, SolveOptions(storage=StorageSpec.canonical(problem.memory))
    )
    banking = allocation.banking
    assert banking is not None
    assert banking.delta_energy == 0.0
    assert all(p.bank == 0 for p in banking.placements.values())
    assert set(banking.placements) == set(allocation.memory_addresses)


# ---------------------------------------------------------------------------
# Multi-bank solves
# ---------------------------------------------------------------------------

def test_multibank_solve_places_every_memory_resident():
    problem = figure_problem("fig3", registers=2)
    spec = StorageSpec.banked(2, 2)
    allocation = allocate(problem.with_options(storage=spec))
    banking = allocation.banking
    assert banking is not None
    assert set(banking.placements) == set(allocation.memory_addresses)
    assert all(
        0 <= p.bank < len(spec.banks) for p in banking.placements.values()
    )
    assert allocation.total_energy == pytest.approx(
        allocation.objective + banking.delta_energy
    )


def test_multibank_capacity_pins_into_registers():
    # Zero-capacity banks admit nothing: with enough registers the
    # legalizer pins everything register-resident.
    problem = figure_problem("fig1", registers=3)
    spec = StorageSpec.banked(2, 2, capacity=0)
    allocation = allocate(problem.with_options(storage=spec))
    assert allocation.memory_addresses == {}
    assert allocation.banking is not None
    assert allocation.banking.placements == {}


def test_multibank_capacity_overflow_is_infeasible():
    # Density 2 at R = 1 with zero bank capacity cannot be placed.
    problem = figure_problem("fig3", registers=1)
    spec = StorageSpec.banked(2, 2, capacity=0)
    with pytest.raises(InfeasibleFlowError):
        allocate(problem.with_options(storage=spec))


def test_options_storage_does_not_override_problem_storage():
    problem = figure_problem("fig3", registers=2).with_options(
        storage=StorageSpec.banked(2, 2)
    )
    via_options = allocate(
        problem, SolveOptions(storage=StorageSpec.banked(3, 3))
    )
    assert len(via_options.problem.storage.banks) == 2


def test_multibank_solution_passes_oracles():
    from repro.verify.oracles import check_allocation

    problem = figure_problem("fig4", registers=2).with_options(
        storage=StorageSpec.banked(2, 2, ports=1)
    )
    allocation = allocate(problem)
    assert check_allocation(allocation) == []
