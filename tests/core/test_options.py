"""SolveOptions: the unified option bundle and its deprecation shims."""

import warnings

import pytest

from repro.core.options import UNSET, SolveOptions, resolve_options
from repro.core.pipeline import allocate_block, allocate_schedule
from repro.core.problem import AllocationProblem
from repro.core.solver import allocate
from repro.flow.warm_start import WarmStartCache
from repro.scheduling import list_schedule
from repro.workloads.registry import figure_example, kernel_block


def fig3_problem(registers=2):
    lifetimes, horizon, _ = figure_example("fig3")
    return AllocationProblem(
        lifetimes, register_count=registers, horizon=horizon
    )


def test_options_are_frozen_with_replace():
    options = SolveOptions()
    with pytest.raises(Exception):
        options.certify = True
    certified = options.replace(certify=True)
    assert certified.certify and not options.certify
    assert certified.validate  # untouched fields carried over


def test_resolve_options_ignores_unset():
    base = SolveOptions(certify=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        resolved = resolve_options(
            base, {"certify": UNSET, "lint": UNSET}
        )
    assert resolved is base


def test_resolve_options_folds_legacy_with_warning():
    with pytest.warns(DeprecationWarning, match="lint"):
        resolved = resolve_options(None, {"lint": "error", "certify": UNSET})
    assert resolved.lint == "error"
    assert resolved.validate  # defaults kept


def test_allocate_legacy_keywords_warn_and_agree():
    problem = fig3_problem()
    modern = allocate(problem, SolveOptions(certify=True))
    with pytest.warns(DeprecationWarning, match="certify"):
        legacy = allocate(problem, certify=True)
    assert legacy.objective == modern.objective
    assert legacy.residency == modern.residency


def test_allocate_schedule_legacy_keywords_warn():
    schedule = list_schedule(kernel_block("fir", taps=4))
    with pytest.warns(DeprecationWarning, match="lint"):
        legacy = allocate_schedule(schedule, register_count=4, lint="error")
    modern = allocate_schedule(
        schedule, register_count=4, options=SolveOptions(lint="error")
    )
    assert legacy.allocation.objective == modern.allocation.objective


def test_modern_path_emits_no_deprecation_warnings():
    problem = fig3_problem()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        allocate(problem, SolveOptions(validate=True, certify=True))
        allocate_block(
            kernel_block("fir", taps=4),
            register_count=4,
            options=SolveOptions(lint="error"),
        )


def test_warm_cache_option_threads_through():
    cache = WarmStartCache()
    problem = fig3_problem()
    cold = allocate(problem)
    first = allocate(problem, SolveOptions(warm_cache=cache))
    second = allocate(problem, SolveOptions(warm_cache=cache))
    assert first.objective == cold.objective == second.objective
