"""Tests for the scratchpad/off-chip hierarchy partition."""

import itertools
import random

import pytest

from repro.core import AllocationProblem, allocate, partition_memory_hierarchy
from repro.core.allocation import memory_intervals
from repro.core.hierarchy import _variable_accesses
from repro.energy import CapacitanceTable, StaticEnergyModel
from repro.exceptions import AllocationError
from repro.lifetimes.intervals import density_profile
from repro.workloads.random_blocks import random_lifetimes
from tests.conftest import make_lifetime

ONCHIP = StaticEnergyModel()
OFFCHIP = StaticEnergyModel(table=CapacitanceTable.offchip_memory())


def solved(seed=8, count=14, registers=2, horizon=12):
    lifetimes = random_lifetimes(random.Random(seed), count, horizon)
    return allocate(AllocationProblem(lifetimes, registers, horizon))


def test_zero_capacity_everything_offchip():
    allocation = solved()
    result = partition_memory_hierarchy(allocation, 0, ONCHIP, OFFCHIP)
    assert result.scratch == {}
    assert result.total_energy == pytest.approx(result.baseline_energy)
    assert result.saving_factor == pytest.approx(1.0)


def test_savings_monotone_in_capacity():
    allocation = solved()
    energies = [
        partition_memory_hierarchy(allocation, s, ONCHIP, OFFCHIP).total_energy
        for s in (0, 1, 2, 4, 8)
    ]
    assert energies == sorted(energies, reverse=True)


def test_large_capacity_takes_everything_onchip():
    allocation = solved()
    result = partition_memory_hierarchy(allocation, 99, ONCHIP, OFFCHIP)
    assert result.offchip == ()
    intervals = memory_intervals(
        allocation.problem, allocation.residency
    )
    assert set(result.scratch) == set(intervals)


def test_capacity_respected():
    allocation = solved()
    problem = allocation.problem
    for capacity in (1, 2, 3):
        result = partition_memory_hierarchy(
            allocation, capacity, ONCHIP, OFFCHIP
        )
        # Locations used <= capacity.
        if result.scratch:
            assert max(result.scratch.values()) + 1 <= capacity
        # Overlapping intervals never share a scratch location.
        intervals = memory_intervals(problem, allocation.residency)
        by_location: dict[int, list[tuple[int, int]]] = {}
        for name, location in result.scratch.items():
            by_location.setdefault(location, []).append(intervals[name])
        for spans in by_location.values():
            for (s1, e1), (s2, e2) in itertools.combinations(spans, 2):
                assert e1 <= s2 or e2 <= s1


def test_matches_bruteforce_on_small_instances():
    for seed in range(6):
        lifetimes = random_lifetimes(
            random.Random(seed), count=6, horizon=8
        )
        allocation = allocate(AllocationProblem(lifetimes, 1, 8))
        intervals = memory_intervals(
            allocation.problem, allocation.residency
        )
        names = list(intervals)
        capacity = 2

        def energy_of(scratch_set: frozenset[str]) -> float:
            total = 0.0
            for name in names:
                writes, reads = _variable_accesses(allocation, name)
                variable = allocation.problem.lifetimes[name].variable
                model = ONCHIP if name in scratch_set else OFFCHIP
                total += writes * model.mem_write(variable)
                total += reads * model.mem_read(variable)
            return total

        best = float("inf")
        for r in range(len(names) + 1):
            for subset in itertools.combinations(names, r):
                spans = [
                    make_lifetime(n, *intervals[n]) for n in subset
                ]
                profile = density_profile(spans, 8)
                if max(profile, default=0) > capacity:
                    continue
                best = min(best, energy_of(frozenset(subset)))
        result = partition_memory_hierarchy(
            allocation, capacity, ONCHIP, OFFCHIP
        )
        assert result.total_energy == pytest.approx(best, abs=1e-6)


def test_negative_capacity_rejected():
    allocation = solved()
    with pytest.raises(AllocationError):
        partition_memory_hierarchy(allocation, -1, ONCHIP, OFFCHIP)


def test_no_memory_variables():
    lifetimes = {"a": make_lifetime("a", 1, 3)}
    allocation = allocate(AllocationProblem(lifetimes, 1, 3))
    result = partition_memory_hierarchy(allocation, 4, ONCHIP, OFFCHIP)
    assert result.scratch == {}
    assert result.offchip == ()
    assert result.total_energy == 0.0
