"""Tests for ASAP/ALAP scheduling and mobility."""

import pytest

from repro.exceptions import ScheduleError
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode
from repro.scheduling.asap_alap import alap_schedule, asap_schedule, mobility


def diamond_block():
    b = BlockBuilder("d")
    x = b.input("x")
    y = b.input("y")
    p = b.mul(x, y, name="p")
    q = b.add(x, y, name="q")
    r = b.add(p, q, name="r")
    b.output(r)
    return b.build()


def test_asap_earliest_starts():
    s = asap_schedule(diamond_block())
    assert s.start_of("op_x") == 1
    assert s.start_of("op_p") == 2
    assert s.start_of("op_r") == 3
    assert s.length == 4  # output sink reads r at step 4


def test_alap_defaults_to_critical_path():
    block = diamond_block()
    asap = asap_schedule(block)
    alap = alap_schedule(block)
    assert alap.length == asap.length


def test_alap_pushes_slack_late():
    block = diamond_block()
    alap = alap_schedule(block, deadline=10)
    asap = asap_schedule(block)
    # Everything shifts as late as the deadline allows.
    assert alap.start_of("op_r") > asap.start_of("op_r")
    assert alap.length == 10


def test_alap_infeasible_deadline():
    with pytest.raises(ScheduleError, match="deadline"):
        alap_schedule(diamond_block(), deadline=2)


def test_mobility_zero_on_critical_path():
    block = diamond_block()
    slack = mobility(block)
    # The chain x -> p -> r -> out is critical (all mobilities 0).
    assert slack["op_p"] == 0
    assert slack["op_r"] == 0
    # With equal-length parallel chains, q is also critical here.
    assert all(value >= 0 for value in slack.values())


def test_mobility_grows_with_deadline():
    block = diamond_block()
    tight = mobility(block)
    loose = mobility(block, deadline=10)
    assert all(loose[k] >= tight[k] for k in tight)


def test_asap_multicycle_delays():
    b = BlockBuilder("m")
    x = b.input("x")
    z = b.input("z")
    y = b.op(OpCode.MUL, (x, z), name="y", delay=3)
    b.output(y)
    block = b.build()
    s = asap_schedule(block)
    # y starts at 2, writes at bottom of 4, sink reads at 5.
    assert s.write_step("op_y") == 4
    assert s.length == 5
