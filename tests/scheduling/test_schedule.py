"""Tests for the Schedule type and its timing conventions."""

import pytest

from repro.exceptions import ScheduleError
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.scheduling.schedule import Schedule


def block() -> BasicBlock:
    return BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("m", OpCode.MUL, inputs=("a", "b"), output="c",
                      delay=2),
            Operation("n", OpCode.NEG, inputs=("c",), output="d"),
        ],
    )


def test_valid_schedule():
    s = Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 4})
    assert s.length == 4
    assert s.write_step("m") == 3  # delay 2: starts 2, writes bottom of 3
    assert s.read_step("n") == 4


def test_read_write_convention_enforced():
    # n reads c at step 3 but m writes it at the bottom of step 3.
    with pytest.raises(ScheduleError, match="before it is written"):
        Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 3})


def test_missing_operation_rejected():
    with pytest.raises(ScheduleError, match="missing"):
        Schedule(block(), {"i0": 1, "i1": 1, "m": 2})


def test_unknown_operation_rejected():
    with pytest.raises(ScheduleError, match="unknown"):
        Schedule(
            block(), {"i0": 1, "i1": 1, "m": 2, "n": 4, "ghost": 1}
        )


def test_step_below_one_rejected():
    with pytest.raises(ScheduleError, match="< 1"):
        Schedule(block(), {"i0": 0, "i1": 1, "m": 2, "n": 4})


def test_operations_at():
    s = Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 4})
    busy_at_3 = {op.name for op in s.operations_at(3)}
    assert busy_at_3 == {"m"}  # multi-cycle op still busy
    assert {op.name for op in s.operations_at(1)} == {"i0", "i1"}


def test_as_ordered_list():
    s = Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 4})
    names = [op.name for op in s.as_ordered_list()]
    assert names == ["i0", "i1", "m", "n"]


def test_start_of_unscheduled_raises():
    s = Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 4})
    with pytest.raises(ScheduleError):
        s.start_of("ghost")


def test_empty_block_schedule():
    empty = BasicBlock.from_operations("e", [])
    s = Schedule(empty, {})
    assert s.length == 0


def test_iteration():
    s = Schedule(block(), {"i0": 1, "i1": 1, "m": 2, "n": 4})
    mapping = {op.name: step for op, step in s}
    assert mapping == {"i0": 1, "i1": 1, "m": 2, "n": 4}
