"""Tests for the resource-constrained list scheduler."""

import random

import pytest

from repro.exceptions import ScheduleError
from repro.ir.builder import BlockBuilder
from repro.scheduling.asap_alap import asap_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.workloads.random_blocks import random_dfg


def many_muls_block(n: int = 6):
    b = BlockBuilder("muls")
    pairs = [(b.input(f"x{i}"), b.input(f"y{i}")) for i in range(n)]
    outs = [b.mul(x, y, name=f"p{i}") for i, (x, y) in enumerate(pairs)]
    acc = outs[0]
    for i, o in enumerate(outs[1:], 1):
        acc = b.add(acc, o, name=f"s{i}")
    b.output(acc)
    return b.build()


def test_respects_multiplier_budget():
    block = many_muls_block(6)
    schedule = list_schedule(block, ResourceSet({"mult": 2, "alu": 2}))
    for step in range(1, schedule.length + 1):
        started = [
            op
            for op in block
            if schedule.start_of(op) == step
            and op.opcode.unit_class == "mult"
        ]
        assert len(started) <= 2


def test_unlimited_resources_match_asap_length():
    block = many_muls_block(4)
    asap = asap_schedule(block)
    listed = list_schedule(block, ResourceSet.unlimited())
    assert listed.length == asap.length


def test_tighter_resources_never_shorter():
    block = many_muls_block(6)
    loose = list_schedule(block, ResourceSet({"mult": 4, "alu": 4}))
    tight = list_schedule(block, ResourceSet({"mult": 1, "alu": 1}))
    assert tight.length >= loose.length


def test_deterministic():
    block = many_muls_block(5)
    a = list_schedule(block, ResourceSet.typical_dsp())
    b = list_schedule(block, ResourceSet.typical_dsp())
    assert a.start == b.start


def test_empty_block():
    b = BlockBuilder("empty")
    schedule = list_schedule(b.build())
    assert schedule.length == 0


def test_random_blocks_schedule_validly():
    rng = random.Random(5)
    for _ in range(5):
        block = random_dfg(rng, operations=20)
        schedule = list_schedule(block, ResourceSet.typical_dsp())
        schedule.validate()  # precedence and completeness


def test_bad_resources_rejected():
    with pytest.raises(ScheduleError):
        ResourceSet({"mult": 0})


def test_lazy_mode_keeps_length_and_shortens_lifetimes():
    from repro.lifetimes import extract_lifetimes, max_density

    block = many_muls_block(5)
    eager = list_schedule(block, ResourceSet.unlimited())
    lazy = list_schedule(block, ResourceSet.unlimited(), lazy=True)
    assert lazy.length == eager.length
    d_eager = max_density(
        extract_lifetimes(eager).values(), eager.length
    )
    d_lazy = max_density(extract_lifetimes(lazy).values(), lazy.length)
    assert d_lazy <= d_eager


def test_lazy_mode_valid_under_tight_resources():
    block = many_muls_block(6)
    schedule = list_schedule(
        block, ResourceSet({"mult": 1, "alu": 1}), lazy=True
    )
    schedule.validate()
