"""The package's public surface: ``repro.__all__`` is real and documented."""

import inspect

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ exports missing {name}"


def test_all_is_sorted_and_unique():
    assert list(repro.__all__) == sorted(set(repro.__all__))


def test_storage_api_is_exported():
    for name in ("StorageSpec", "StorageLevel", "SolveOptions",
                 "allocate", "allocate_block", "allocate_schedule"):
        assert name in repro.__all__


def test_exported_objects_have_docstrings():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)
                or inspect.ismodule(obj)):
            continue  # plain data (version string, name tuples)
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert undocumented == []


def test_quickstart_snippet_runs():
    # The module docstring's quickstart must keep working verbatim.
    result = repro.allocate_block(
        repro.fir_filter(taps=8), register_count=4
    )
    assert "energy" in result.summary()


def test_storage_quickstart_runs():
    # The README's multi-bank snippet, kept executable here.
    lifetimes, horizon, _ = repro.figure_example("fig3")
    problem = repro.AllocationProblem(
        lifetimes,
        register_count=2,
        horizon=horizon,
        storage=repro.StorageSpec.banked(2, 2),
    )
    allocation = repro.allocate(
        problem, repro.SolveOptions(certify=True)
    )
    assert allocation.banking is not None
