"""Cache-key invariance: renames collide, any parameter change doesn't."""

import dataclasses

import pytest

from repro.core.problem import AllocationProblem
from repro.energy import (
    ActivityEnergyModel,
    MemoryConfig,
    PairwiseSwitchingModel,
    StaticEnergyModel,
)
from repro.energy.capacitance import CapacitanceTable
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import Lifetime
from repro.service import cache_key, canonical_form, canonicalize
from repro.workloads.random_blocks import random_lifetimes, spawn_rng
from tests.conftest import make_lifetime


def base_problem(**overrides) -> AllocationProblem:
    lifetimes = {
        "alpha": make_lifetime("alpha", 1, (3, 5), trace=(1, 2, 3)),
        "beta": make_lifetime("beta", 2, 4, trace=(4, 5, 6)),
        "gamma": make_lifetime("gamma", 3, 6, live_out=True),
    }
    defaults = dict(
        lifetimes=lifetimes,
        register_count=2,
        horizon=6,
        energy_model=StaticEnergyModel(),
    )
    defaults.update(overrides)
    return AllocationProblem(**defaults)


def renamed(problem: AllocationProblem, prefix: str) -> AllocationProblem:
    """The same instance with every variable renamed (reverse order)."""
    mapping = {
        name: f"{prefix}{i}"
        for i, name in enumerate(sorted(problem.lifetimes, reverse=True))
    }
    lifetimes = {
        mapping[name]: Lifetime(
            DataVariable(
                mapping[name], lt.variable.width, lt.variable.trace
            ),
            lt.write_time,
            lt.read_times,
            lt.live_out,
        )
        for name, lt in problem.lifetimes.items()
    }
    forced = frozenset(
        (mapping[name], index) for name, index in problem.forced_segments
    )
    return dataclasses.replace(
        problem, lifetimes=lifetimes, forced_segments=forced
    )


def test_rename_identical_instances_share_a_key():
    problem = base_problem()
    assert cache_key(problem) == cache_key(renamed(problem, "zz"))
    assert cache_key(problem) == cache_key(renamed(problem, "q_"))


def test_random_instances_are_renaming_invariant():
    for case in range(10):
        lifetimes = random_lifetimes(
            spawn_rng(3, "canon", case), 9, 11, traced=True
        )
        problem = AllocationProblem(
            lifetimes, 3, 11, energy_model=ActivityEnergyModel()
        )
        assert cache_key(problem) == cache_key(renamed(problem, "r"))


def test_inverse_renaming_round_trips():
    canonical = canonicalize(base_problem())
    inverse = canonical.inverse()
    assert sorted(inverse) == [f"x{i}" for i in range(3)]
    assert sorted(inverse.values()) == ["alpha", "beta", "gamma"]
    for original, canon in canonical.renaming.items():
        assert inverse[canon] == original


def test_canonical_form_is_name_free():
    form = canonical_form(base_problem())
    text = str(form)
    for name in ("alpha", "beta", "gamma"):
        assert name not in text


@pytest.mark.parametrize(
    "perturbation",
    [
        lambda p: dataclasses.replace(p, register_count=3),
        lambda p: dataclasses.replace(p, horizon=7),
        lambda p: dataclasses.replace(p, graph_style="all_pairs"),
        lambda p: dataclasses.replace(p, split_at_reads=False),
        lambda p: dataclasses.replace(p, allow_unused_registers=False),
        lambda p: dataclasses.replace(
            p, forced_segments=frozenset({("alpha", 0)})
        ),
        lambda p: dataclasses.replace(
            p, memory=MemoryConfig(divisor=2, voltage=3.3)
        ),
        lambda p: dataclasses.replace(
            p, memory=MemoryConfig(divisor=2, voltage=3.3, offset=0)
        ),
        lambda p: dataclasses.replace(
            p, energy_model=StaticEnergyModel().with_voltages(3.3, 5.0)
        ),
        lambda p: dataclasses.replace(
            p, energy_model=StaticEnergyModel().with_voltages(5.0, 3.3)
        ),
        lambda p: dataclasses.replace(
            p,
            energy_model=StaticEnergyModel(
                table=CapacitanceTable(mem_read=99.0)
            ),
        ),
        lambda p: dataclasses.replace(
            p, energy_model=ActivityEnergyModel()
        ),
        lambda p: dataclasses.replace(
            p, energy_model=ActivityEnergyModel(start_activity=0.9)
        ),
        lambda p: dataclasses.replace(
            p,
            energy_model=PairwiseSwitchingModel({("alpha", "beta"): 0.4}),
        ),
    ],
)
def test_any_parameter_perturbation_changes_the_key(perturbation):
    problem = base_problem()
    assert cache_key(problem) != cache_key(perturbation(problem))


def test_lifetime_perturbations_change_the_key():
    problem = base_problem()
    shifted = dict(problem.lifetimes)
    shifted["beta"] = make_lifetime("beta", 2, 5, trace=(4, 5, 6))
    assert cache_key(problem) != cache_key(
        dataclasses.replace(problem, lifetimes=shifted)
    )
    extra = dict(problem.lifetimes)
    extra["delta"] = make_lifetime("delta", 4, 6)
    assert cache_key(problem) != cache_key(
        dataclasses.replace(problem, lifetimes=extra)
    )


def test_pairwise_activities_follow_the_renaming():
    model = PairwiseSwitchingModel(
        {("alpha", "beta"): 0.2, ("beta", "gamma"): 0.7}
    )
    problem = base_problem(energy_model=model)
    other = renamed(base_problem(), "n")
    # Rebuild the same activities under the new names: alpha->n2,
    # beta->n1, gamma->n0 (reverse-sorted rename).
    other = dataclasses.replace(
        other,
        energy_model=PairwiseSwitchingModel(
            {("n2", "n1"): 0.2, ("n1", "n0"): 0.7}
        ),
    )
    assert cache_key(problem) == cache_key(other)


def test_key_format_and_determinism():
    problem = base_problem()
    key = cache_key(problem)
    assert key.startswith("sha256:") and len(key) == 7 + 64
    assert key == cache_key(base_problem())
