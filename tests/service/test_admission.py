"""Admission control: token-bucket and bounded-queue invariants.

The properties here are the serving layer's safety net: the bucket can
never over-grant (``burst + rate * T`` jobs over any window ``T``), the
queue can never hold more than ``capacity`` jobs, and admission
accounting always reconciles — every submitted job is either admitted
or explicitly shed with a reason, no third outcome.  All time is a fake
monotonic clock, so the properties are exact, not flaky.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.exceptions import ServiceError
from repro.service.admission import AdmissionController, TokenBucket, Verdict


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        assert seconds >= 0
        self.now += seconds


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------


def test_bucket_starts_full_and_grants_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
    assert bucket.try_acquire(4) == 0.0
    wait = bucket.try_acquire(1)
    assert wait == pytest.approx(1.0)  # 1 token at 1/s


def test_bucket_refills_at_rate_up_to_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert bucket.try_acquire(3) == 0.0
    clock.advance(1.0)  # +2 tokens
    assert bucket.tokens == pytest.approx(2.0)
    clock.advance(10.0)  # caps at burst
    assert bucket.tokens == pytest.approx(3.0)


def test_bucket_rejection_leaves_tokens_untouched():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    assert bucket.try_acquire(2) == 0.0
    before = bucket.tokens
    assert bucket.try_acquire(1) > 0.0
    assert bucket.tokens == pytest.approx(before)


def test_bucket_retry_hint_is_sufficient():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.5, burst=2.0, clock=clock)
    bucket.try_acquire(2)
    wait = bucket.try_acquire(2)
    assert wait > 0
    clock.advance(wait)
    assert bucket.try_acquire(2) == 0.0  # the hint was enough


def test_bucket_parameter_validation():
    with pytest.raises(ServiceError, match="rate"):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ServiceError, match="burst"):
        TokenBucket(rate=1, burst=0.5)
    bucket = TokenBucket(rate=1, burst=1)
    with pytest.raises(ServiceError, match="token cost"):
        bucket.try_acquire(0)


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=50.0),
    burst=st.floats(min_value=1.0, max_value=20.0),
    events=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0),  # dt before request
            st.integers(min_value=1, max_value=5),  # token cost
        ),
        max_size=60,
    ),
)
def test_bucket_never_exceeds_rate_property(rate, burst, events):
    """Grants over any window never exceed ``burst + rate * T`` tokens."""
    clock = FakeClock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    granted = 0.0
    start = clock.now
    for dt, cost in events:
        clock.advance(dt)
        if bucket.try_acquire(cost) == 0.0:
            granted += cost
        elapsed = clock.now - start
        # 1e-6 slack for float accumulation across many refills.
        assert granted <= burst + rate * elapsed + 1e-6


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


def test_admit_and_dequeue_round_trip():
    control = AdmissionController(capacity=4)
    verdict = control.admit("a", "req-1", weight=2)
    assert verdict == Verdict(True)
    assert control.queued == 2
    assert control.next() == ("a", "req-1")
    assert control.queued == 0
    assert control.next() is None


def test_queue_full_sheds_with_reason_and_eta():
    control = AdmissionController(capacity=3)
    assert control.admit("a", "r1", weight=2).admitted
    verdict = control.admit("a", "r2", weight=2)
    assert not verdict.admitted
    assert verdict.reason == "queue_full"
    assert verdict.retry_after > 0
    stats = control.stats()
    assert stats["shed_jobs"] == 2
    assert stats["shed_by_reason"] == {"queue_full": 2}


def test_rate_limit_sheds_before_queueing():
    clock = FakeClock()
    control = AdmissionController(capacity=100, rate=1.0, burst=2.0, clock=clock)
    assert control.admit("a", "r1", weight=2).admitted
    verdict = control.admit("a", "r2", weight=1)
    assert verdict.reason == "rate_limited"
    assert verdict.retry_after == pytest.approx(1.0)
    # The queue was untouched by the shed request.
    assert control.queued == 2
    clock.advance(1.0)
    assert control.admit("a", "r2", weight=1).admitted


def test_rate_limits_are_per_client():
    clock = FakeClock()
    control = AdmissionController(capacity=100, rate=1.0, burst=1.0, clock=clock)
    assert control.admit("a", "r1").admitted
    assert not control.admit("a", "r2").admitted
    # A different client has its own full bucket.
    assert control.admit("b", "r1").admitted


def test_draining_sheds_everything():
    control = AdmissionController(capacity=10)
    control.start_drain()
    verdict = control.admit("a", "r1")
    assert verdict.reason == "draining"
    assert control.stats()["draining"] is True


def test_round_robin_interleaves_clients():
    control = AdmissionController(capacity=100)
    for index in range(3):
        control.admit("a", f"a{index}")
    for index in range(3):
        control.admit("b", f"b{index}")
    control.admit("c", "c0")
    order = []
    while True:
        item = control.next()
        if item is None:
            break
        order.append(item[0])
    # One request per client per rotation: no client appears twice
    # before every backlogged client appeared once.
    assert order == ["a", "b", "c", "a", "b", "a", "b"]


def test_shed_counters_reach_observability():
    control = AdmissionController(capacity=1)
    control.admit("a", "r1")
    with obs.collect() as trace:
        control.admit("a", "r2", weight=3)
    assert trace.counters["service.shed"] == 3
    assert trace.counters["service.shed.queue_full"] == 3


def test_retry_after_tracks_observed_service_time():
    control = AdmissionController(capacity=1000)
    slow_eta = None
    for _ in range(50):
        control.observe_service_time(10.0, jobs=1)
    slow_eta = control._eta(5)
    for _ in range(200):
        control.observe_service_time(0.001, jobs=1)
    fast_eta = control._eta(5)
    assert fast_eta < slow_eta
    assert 0.1 <= fast_eta <= 60.0 and 0.1 <= slow_eta <= 60.0


def test_parameter_validation():
    with pytest.raises(ServiceError, match="capacity"):
        AdmissionController(capacity=0)
    control = AdmissionController(capacity=1)
    with pytest.raises(ServiceError, match="weight"):
        control.admit("a", "r", weight=0)


@settings(max_examples=150, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=20),
    arrivals=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),  # client
            st.integers(min_value=1, max_value=6),  # weight
            st.booleans(),  # dequeue one request first?
        ),
        max_size=80,
    ),
)
def test_queue_capacity_and_accounting_property(capacity, arrivals):
    """Queue depth never exceeds capacity; admitted + shed == submitted;
    every rejection carries an explicit reason."""
    control = AdmissionController(capacity=capacity)
    submitted = 0
    dequeued = 0
    for client, weight, pop_first in arrivals:
        if pop_first and control.next() is not None:
            dequeued += 1
        verdict = control.admit(client, object(), weight=weight)
        submitted += weight
        if not verdict.admitted:
            assert verdict.reason in ("queue_full", "rate_limited", "draining")
            assert verdict.retry_after >= 0
        assert 0 <= control.queued <= capacity
    stats = control.stats()
    assert stats["admitted_jobs"] + stats["shed_jobs"] == submitted
    assert stats["shed_jobs"] == sum(stats["shed_by_reason"].values())


@settings(max_examples=100, deadline=None)
@given(
    rate=st.floats(min_value=0.5, max_value=20.0),
    burst=st.floats(min_value=1.0, max_value=10.0),
    arrivals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),  # inter-arrival dt
            st.integers(min_value=1, max_value=4),  # weight
        ),
        max_size=60,
    ),
)
def test_controller_rate_property_with_random_arrivals(rate, burst, arrivals):
    """Under seeded random arrivals the controller-level admission rate
    obeys the same bound as the raw bucket (single client)."""
    clock = FakeClock()
    control = AdmissionController(
        capacity=10_000, rate=rate, burst=burst, clock=clock
    )
    admitted = 0.0
    start = clock.now
    for dt, weight in arrivals:
        clock.advance(dt)
        if control.admit("client", object(), weight=weight).admitted:
            admitted += weight
        assert admitted <= burst + rate * (clock.now - start) + 1e-6
    # Admission accounting matches what we observed client-side.
    assert control.stats()["admitted_jobs"] == admitted
    assert math.isclose(
        control.stats()["admitted_jobs"] + control.stats()["shed_jobs"],
        sum(weight for _, weight in arrivals),
    )
