"""Lint-verdict caching and the executor-side admission gate.

The contract under test: verdicts key on the canonical sha256 digest
*plus* the schedule fingerprint (isomorphic lifetimes from different
schedules must not share a verdict), persist as sibling
``<digest>.lint.json`` files that inherit the result cache's sharding,
and the executor's gate turns blocking verdicts into ``"rejected"``
results that never reach a solver.
"""

from __future__ import annotations

from repro.core.problem import AllocationProblem
from repro.obs import trace as obs
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule
from repro.service.cache import CachedLint, ResultCache, ShardedResultCache
from repro.service.executor import BatchExecutor
from repro.service.lintgate import LintGate, schedule_fingerprint
from repro.service.manifest import parse_manifest
from repro.workloads.registry import kernel_block


def healthy():
    block = kernel_block("fir", taps=6, seed=3)
    schedule = list_schedule(block)
    return AllocationProblem.from_schedule(schedule, register_count=4), schedule


def corrupted():
    manifest = {
        "schema": "repro.service/manifest/v1",
        "jobs": [
            {"kind": "figure", "name": "fig3", "registers": 0, "divisor": 2}
        ],
    }
    built = parse_manifest(manifest).build()[0]
    return built.problem, built.schedule


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_empty_for_no_schedule():
    assert schedule_fingerprint(None) == ""


def test_fingerprint_stable_and_schedule_sensitive():
    _, schedule = healthy()
    first = schedule_fingerprint(schedule)
    assert first == schedule_fingerprint(schedule)
    # A legal reschedule of the same block must fingerprint differently.
    shifted = Schedule(
        schedule.block,
        {name: step + 1 for name, step in schedule.start.items()},
    )
    assert schedule_fingerprint(shifted) != first


# ----------------------------------------------------------------------
# verdict cache
# ----------------------------------------------------------------------
def test_verdict_cached_by_digest_and_fingerprint():
    problem, schedule = healthy()
    cache = ResultCache()
    gate = LintGate(cache=cache, fail_on="error")
    first = gate.check(problem, schedule=schedule, label="a")
    second = gate.check(problem, schedule=schedule, label="a")
    assert not first.cached and second.cached
    assert cache.stats()["lint_hits"] == 1


def test_different_schedule_fingerprint_is_a_miss():
    problem, schedule = healthy()
    cache = ResultCache()
    gate = LintGate(cache=cache, fail_on="error")
    gate.check(problem, schedule=schedule)
    # Same canonical problem, no schedule: the verdict must not be
    # shared (the schedule-aware rules did not run for this lookup).
    verdict = gate.check(problem, schedule=None)
    assert not verdict.cached
    assert cache.stats()["lint_misses"] == 2


def test_verdicts_persist_on_disk_next_to_results(tmp_path):
    problem, schedule = healthy()
    store = tmp_path / "store"
    first_cache = ResultCache(directory=store)
    LintGate(cache=first_cache, fail_on="error").check(
        problem, schedule=schedule
    )
    lint_files = list(store.rglob("*.lint.json"))
    assert len(lint_files) == 1
    # A fresh cache over the same directory serves the verdict from disk.
    second_cache = ResultCache(directory=store)
    verdict = LintGate(cache=second_cache, fail_on="error").check(
        problem, schedule=schedule
    )
    assert verdict.cached


def test_sharded_cache_separates_lint_entries_in_stats(tmp_path):
    problem, schedule = healthy()
    cache = ShardedResultCache(directory=tmp_path / "shards", shard_width=2)
    LintGate(cache=cache, fail_on="error").check(problem, schedule=schedule)
    stats = cache.stats()
    assert stats["lint_disk_entries"] == 1
    assert stats["disk_entries"] == 0
    # The verdict file landed inside a shard directory, not the root.
    lint_file = next((tmp_path / "shards").rglob("*.lint.json"))
    assert lint_file.parent != tmp_path / "shards"


def test_corrupt_cached_verdict_is_reanalysed():
    problem, schedule = healthy()
    cache = ResultCache()
    gate = LintGate(cache=cache, fail_on="error")
    verdict = gate.check(problem, schedule=schedule)
    cache.put_lint(
        CachedLint(
            key=verdict.key,
            fingerprint=verdict.fingerprint,
            report={"schema": "bogus"},
        )
    )
    again = gate.check(problem, schedule=schedule)
    assert not again.cached
    assert again.report.codes == verdict.report.codes


# ----------------------------------------------------------------------
# gate semantics
# ----------------------------------------------------------------------
def test_unknown_fail_on_fails_closed_to_error():
    gate = LintGate(fail_on="definitely-not-a-severity")
    problem, schedule = corrupted()
    verdict = gate.check(problem, schedule=schedule)
    assert verdict.blocking


def test_never_lints_but_never_blocks():
    gate = LintGate(fail_on="never")
    problem, schedule = corrupted()
    verdict = gate.check(problem, schedule=schedule)
    assert verdict.report.codes  # findings exist
    assert not verdict.blocking


# ----------------------------------------------------------------------
# executor integration
# ----------------------------------------------------------------------
def test_executor_rejects_blocked_jobs_without_solving():
    good_problem, good_schedule = healthy()
    bad_problem, bad_schedule = corrupted()
    cache = ResultCache()
    executor = BatchExecutor(
        workers=1,
        cache=cache,
        lint_gate=LintGate(cache=cache, fail_on="error"),
    )
    with obs.collect() as trace:
        executor.submit(good_problem, job_id="good", schedule=good_schedule)
        executor.submit(bad_problem, job_id="bad", schedule=bad_schedule)
        results = executor.gather()
    assert [r.status for r in results] == ["ok", "rejected"]
    assert results[1].summary is None
    assert "lint" in (results[1].error or "")
    assert len(executor.lint_verdicts) == 2
    assert [v.blocking for v in executor.lint_verdicts] == [False, True]
    # Exactly one solve happened: the rejected job never reached a rung.
    assert trace.counters.get("solver.flow_solve.calls", 0) == 1


def test_executor_gates_cache_hits_too():
    problem, schedule = healthy()
    cache = ResultCache()
    executor = BatchExecutor(
        workers=1,
        cache=cache,
        lint_gate=LintGate(cache=cache, fail_on="error"),
    )
    executor.map_blocks([problem], ids=["x"], schedules=[schedule])
    results = executor.map_blocks([problem], ids=["x"], schedules=[schedule])
    assert results[0].cached
    # The second gather still produced a verdict (served from cache).
    assert len(executor.lint_verdicts) == 1
    assert executor.lint_verdicts[0].cached
