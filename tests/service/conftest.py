"""Shared fixtures for the service tests: an in-process server harness.

The allocation server is pure asyncio; pytest here is synchronous (no
pytest-asyncio in the toolchain), so :class:`ServerHarness` hosts the
event loop on a daemon thread and exposes a plain-blocking HTTP client
(`http.client`) plus threadsafe wrappers for drain/close.  Tests talk to
a real listening socket — the same code path production traffic takes.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from pathlib import Path
from typing import Any, Mapping

import pytest

from repro.service.server import AllocationServer, ServerConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The checked-in 16-job manifest the CI smoke jobs replay.
PAPER_MANIFEST = REPO_ROOT / "examples" / "manifests" / "paper.json"


class ServerHarness:
    """A live :class:`AllocationServer` on a background event loop.

    Usage::

        with ServerHarness(ServerConfig(port=0)) as harness:
            status, headers, body = harness.post_json("/v1/batch", doc)

    The listen port is always ephemeral (``port=0`` is forced), the
    loop thread is a daemon, and ``__exit__`` drains and tears down the
    server, so a failing test cannot leak a listener into the next one.
    """

    def __init__(self, config: ServerConfig | None = None, **server_kwargs):
        config = config or ServerConfig()
        config.port = 0
        self.config = config
        self.server = AllocationServer(config, **server_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="serve-harness-loop",
            daemon=True,
        )

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        self._call(self.server.start(), timeout=10)
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self._call(self.server.close(), timeout=30)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def _call(self, coro, timeout: float = 30) -> Any:
        """Run *coro* on the server's loop, blocking this thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def drain(self, timeout: float = 30) -> None:
        """Blocking graceful drain (what SIGTERM triggers in the CLI)."""
        self._call(self.server.drain(), timeout=timeout)

    @property
    def port(self) -> int:
        """The ephemeral port the server bound."""
        assert self.server.port is not None
        return self.server.port

    # -- HTTP client ---------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
        timeout: float = 60,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP round trip; returns (status, headers, raw body)."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            conn.request(method, path, body=body, headers=dict(headers or {}))
            response = conn.getresponse()
            payload = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                payload,
            )
        finally:
            conn.close()

    def get_json(self, path: str) -> tuple[int, dict]:
        """GET *path* and decode the JSON body."""
        status, _, body = self.request("GET", path)
        return status, json.loads(body)

    def post_json(
        self,
        path: str,
        document: Any,
        client_id: str | None = None,
        timeout: float = 120,
    ) -> tuple[int, dict[str, str], dict]:
        """POST a JSON document; returns (status, headers, decoded body)."""
        headers = {"Content-Type": "application/json"}
        if client_id is not None:
            headers["X-Client-Id"] = client_id
        status, response_headers, body = self.request(
            "POST",
            path,
            body=json.dumps(document).encode("utf-8"),
            headers=headers,
            timeout=timeout,
        )
        return status, response_headers, json.loads(body)


@pytest.fixture
def paper_manifest() -> dict:
    """The decoded 16-job paper manifest (fresh copy per test)."""
    return json.loads(PAPER_MANIFEST.read_text(encoding="utf-8"))


def tiny_manifest(jobs: list[dict] | None = None, **defaults) -> dict:
    """A minimal valid manifest document for request-level tests."""
    return {
        "schema": "repro.service/manifest/v1",
        "defaults": {"registers": 3, **defaults},
        "jobs": jobs
        or [{"kind": "random", "variables": 6, "horizon": 8, "seed": 1}],
    }
