"""End-to-end serving tests: real sockets, real solves, real drain.

Everything here exercises :class:`repro.service.server.AllocationServer`
over HTTP through the :class:`~tests.service.conftest.ServerHarness`
(the event loop lives on a background thread; the tests are plain
blocking clients).  The acceptance bars of the serving PR live here:

* the paper manifest served twice is >= 90% cache-hit the second time,
  with energies identical to the ``repro-alloc batch`` CLI;
* a cold/warm voltage sweep hits the warm-start cache on points 2..N
  with energies identical to cold solves, visible on ``/metrics``;
* a burst of 4x queue capacity sheds with explicit 503 + Retry-After
  (zero silent drops — every request is answered and the shed counter
  reconciles) while ``/healthz`` stays responsive;
* SIGTERM-style drain finishes in-flight work and sheds new arrivals.
"""

from __future__ import annotations

import json
import threading
import time

from repro.cli import main
from repro.service.server import ServerConfig

from .conftest import PAPER_MANIFEST, ServerHarness, tiny_manifest


def _job_energies(report: dict) -> dict[str, float]:
    """job_id -> objective map of a batch report document."""
    return {
        job["job_id"]: job["objective"]
        for job in report["jobs"]
        if job.get("objective") is not None
    }


# ---------------------------------------------------------------------------
# basic routes
# ---------------------------------------------------------------------------


def test_healthz_and_metrics_endpoints():
    with ServerHarness(ServerConfig()) as harness:
        status, health = harness.get_json("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queued_jobs"] == 0

        status, metrics = harness.get_json("/metrics")
        assert status == 200
        assert metrics["schema"] == "repro.service/metrics/v1"
        assert metrics["admission"]["capacity"] == harness.config.queue_capacity
        assert "counters" in metrics and "cache" in metrics
        assert "dag" in metrics  # task-graph counters get their own section

        status, _, body = harness.request("GET", "/metrics?format=text")
        assert status == 200


def test_dag_counters_reach_the_metrics_endpoint():
    # The server installs a process-global trace collector, so dag.*
    # counters emitted by the task-graph pipeline (partitioning, DVFS
    # sweeps, block dispatch) surface in /metrics — JSON section and
    # Prometheus text exposition alike.
    from repro.obs import trace as obs

    with ServerHarness(ServerConfig()) as harness:
        obs.count("dag.blocks_dispatched", 4)
        obs.count("dag.dvfs_sweep.solves", 20)

        status, metrics = harness.get_json("/metrics")
        assert status == 200
        assert metrics["dag"]["blocks_dispatched"] == 4
        assert metrics["dag"]["dvfs_sweep.solves"] == 20
        assert metrics["counters"]["dag.blocks_dispatched"] == 4

        status, _, body = harness.request("GET", "/metrics?format=text")
        assert status == 200
        text = body.decode()
        assert "dag_blocks_dispatched_total 4" in text
        assert "dag_dvfs_sweep_solves_total 20" in text


def test_bad_requests_are_explicit_errors():
    with ServerHarness(ServerConfig()) as harness:
        status, _, body = harness.request("GET", "/nope")
        assert status == 404

        status, _, body = harness.request("POST", "/healthz")
        assert status == 405

        status, _, body = harness.request(
            "POST", "/v1/batch", body=b"{not json"
        )
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

        status, _, wrong = harness.post_json(
            "/v1/batch", {"schema": "nope", "jobs": [{}]}
        )
        assert status == 400
        assert "schema" in wrong["error"]


def test_single_job_request_round_trip():
    with ServerHarness(ServerConfig()) as harness:
        status, _, report = harness.post_json(
            "/v1/batch", tiny_manifest(), client_id="round-trip"
        )
        assert status == 200
        assert report["schema"] == "repro.service/batch-report/v1"
        assert report["totals"]["jobs"] == 1
        assert report["totals"]["ok"] == 1


# ---------------------------------------------------------------------------
# paper manifest, twice: the cache-hit acceptance bar
# ---------------------------------------------------------------------------


def test_paper_manifest_twice_second_pass_is_cache_served(
    paper_manifest, tmp_path
):
    config = ServerConfig(cache_dir=tmp_path / "serve-cache")
    with ServerHarness(config) as harness:
        status, _, cold = harness.post_json(
            "/v1/batch", paper_manifest, client_id="ci"
        )
        assert status == 200
        assert cold["totals"]["jobs"] == 16
        assert cold["totals"]["ok"] == 16
        assert cold["totals"]["cached"] == 0

        status, _, warm = harness.post_json(
            "/v1/batch", paper_manifest, client_id="ci"
        )
        assert status == 200
        assert warm["totals"]["ok"] == 16
        # >= 90% of the second pass is served from the sharded cache.
        assert warm["totals"]["cached"] >= 15
        assert _job_energies(warm) == _job_energies(cold)

        # The persistent store is sharded on disk.
        status, metrics = harness.get_json("/metrics")
        assert metrics["cache"]["shards"] >= 1
        assert metrics["cache"]["disk_entries"] >= 15


def test_served_energies_match_the_batch_cli(paper_manifest, tmp_path, capsys):
    with ServerHarness(ServerConfig()) as harness:
        status, _, served = harness.post_json(
            "/v1/batch", paper_manifest, client_id="parity"
        )
    assert status == 200
    out = tmp_path / "batch.json"
    assert main(
        ["batch", str(PAPER_MANIFEST), "--no-cache", "-o", str(out)]
    ) == 0
    capsys.readouterr()
    cli_report = json.loads(out.read_text(encoding="utf-8"))
    assert _job_energies(served) == _job_energies(cli_report)
    assert len(_job_energies(served)) == 16


# ---------------------------------------------------------------------------
# cold/warm voltage sweep: the warm-start acceptance bar
# ---------------------------------------------------------------------------


def _sweep_point(voltage: float) -> dict:
    return tiny_manifest(
        jobs=[
            {
                "kind": "kernel",
                "name": "fir",
                "taps": 8,
                "registers": 4,
                "voltage": voltage,
                "label": f"fir@{voltage}",
            }
        ]
    )


def test_voltage_sweep_is_warm_started_with_identical_energies(tmp_path):
    voltages = (5.0, 4.0, 3.3, 2.5, 2.0)
    served: dict[str, float] = {}
    with ServerHarness(ServerConfig(workers=1)) as harness:
        for voltage in voltages:
            status, _, report = harness.post_json(
                "/v1/batch", _sweep_point(voltage), client_id="sweep"
            )
            assert status == 200
            assert report["totals"]["cached"] == 0  # distinct keys
            served.update(_job_energies(report))
        status, metrics = harness.get_json("/metrics")
        counters = metrics["counters"]
        # Point 1 is a cold factorisation; points 2..5 re-solve
        # incrementally off the same network topology.
        assert counters.get("solver.warm_start.cold") == 1
        assert counters.get("solver.warm_start.incremental") == len(voltages) - 1
        status, _, text = harness.request("GET", "/metrics?format=text")
        assert b"solver_warm_start_incremental_total 4" in text

    # Cold reference: a fresh server (empty warm cache) per point.
    for voltage in voltages:
        with ServerHarness(ServerConfig(workers=1)) as cold_harness:
            status, _, report = cold_harness.post_json(
                "/v1/batch", _sweep_point(voltage), client_id="cold"
            )
            assert status == 200
            cold = _job_energies(report)
        label = f"fir@{voltage}"
        assert served[label] == cold[label]
    assert len(served) == len(voltages)


# ---------------------------------------------------------------------------
# burst shedding: the backpressure acceptance bar
# ---------------------------------------------------------------------------


def test_burst_sheds_explicitly_and_healthz_stays_responsive(monkeypatch):
    capacity = 4
    burst = 4 * capacity  # the acceptance bar: >= 4x queue capacity
    hold = threading.Event()
    config = ServerConfig(queue_capacity=capacity)
    with ServerHarness(config) as harness:

        def slow_solve(ticket):
            hold.wait(timeout=30)
            return 200, {"totals": {"jobs": ticket.jobs}, "jobs": []}

        monkeypatch.setattr(harness.server, "_solve_request", slow_solve)

        results: list[tuple[int, dict[str, str]]] = []
        lock = threading.Lock()
        start = threading.Barrier(burst)

        def client(index: int) -> None:
            start.wait(timeout=10)
            status, headers, _ = harness.request(
                "POST",
                "/v1/batch",
                body=json.dumps(tiny_manifest()).encode("utf-8"),
                headers={"X-Client-Id": f"burst-{index}"},
                timeout=120,
            )
            with lock:
                results.append((status, headers))

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(burst)
        ]
        for thread in threads:
            thread.start()

        # Wait until every request has been answered or parked in the
        # queue, then prove the event loop is still responsive while
        # the dispatcher is wedged on the (held) solve.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with lock:
                answered = len(results)
            if answered >= burst - capacity - 1:
                break
            time.sleep(0.05)
        status, health = harness.get_json("/healthz")
        assert status == 200 and health["status"] == "ok"

        hold.set()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()

        # Zero silent drops: every request got an answer, and it is
        # either a success or an explicit 503.
        assert len(results) == burst
        shed = [item for item in results if item[0] == 503]
        served = [item for item in results if item[0] == 200]
        assert len(shed) + len(served) == burst
        # At most 1 in-flight + capacity queued requests can succeed.
        assert len(served) <= capacity + 1
        assert len(shed) >= burst - capacity - 1
        for status, headers in shed:
            assert int(headers["retry-after"]) >= 1

        # The shed counter reconciles with the client-visible 503s.
        status, metrics = harness.get_json("/metrics")
        assert metrics["counters"]["service.shed"] == len(shed)
        assert (
            metrics["counters"]["service.shed.queue_full"] == len(shed)
        )
        assert metrics["admission"]["shed_jobs"] == len(shed)


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


def test_drain_finishes_inflight_work_and_sheds_new_arrivals(monkeypatch):
    release = threading.Event()
    with ServerHarness(ServerConfig(queue_capacity=8)) as harness:
        real_solve = harness.server._solve_request

        def gated_solve(ticket):
            release.wait(timeout=30)
            return real_solve(ticket)

        monkeypatch.setattr(harness.server, "_solve_request", gated_solve)

        inflight: list[int] = []

        def submit() -> None:
            status, _, report = harness.post_json(
                "/v1/batch", tiny_manifest(), client_id="inflight"
            )
            inflight.append(status)
            assert report["totals"]["ok"] == 1

        worker = threading.Thread(target=submit)
        worker.start()
        # Wait for the job to reach the (gated) solve.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if harness.server._inflight_jobs:
                break
            time.sleep(0.02)
        assert harness.server._inflight_jobs == 1

        drainer = threading.Thread(target=harness.drain)
        drainer.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if harness.server.draining:
                break
            time.sleep(0.02)

        # New arrivals shed explicitly while the drain is in progress.
        status, health = harness.get_json("/healthz")
        assert health["status"] == "draining"
        status, headers, body = harness.request(
            "POST",
            "/v1/batch",
            body=json.dumps(tiny_manifest()).encode("utf-8"),
        )
        assert status == 503
        assert json.loads(body)["reason"] == "draining"
        assert "retry-after" in headers

        # The in-flight job still completes successfully.
        release.set()
        worker.join(timeout=30)
        drainer.join(timeout=30)
        assert not worker.is_alive() and not drainer.is_alive()
        assert inflight == [200]
