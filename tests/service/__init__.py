"""Tests for the batch allocation service (:mod:`repro.service`)."""
