"""Batch report totals, JSON round trip and text rendering."""

import json

import pytest

from repro.service import (
    BatchExecutor,
    REPORT_SCHEMA,
    ResultCache,
    build_batch_report,
    render_batch_text,
    report_to_json,
)
from repro.core.problem import AllocationProblem
from repro.workloads.random_blocks import random_lifetimes, spawn_rng


@pytest.fixture
def batch():
    problems = []
    for case in range(5):
        rng = spawn_rng(2, "report", case)
        problems.append(
            AllocationProblem(random_lifetimes(rng, 6, 10), 2, 10)
        )
    cache = ResultCache()
    executor = BatchExecutor(workers=1, cache=cache)
    results = executor.map_blocks(
        problems, ids=[f"job-{i}" for i in range(5)]
    )
    return results, cache


def test_totals_add_up(batch):
    results, cache = batch
    report = build_batch_report(
        results, cache=cache, wall_time_s=1.5, workers=1, manifest="m.json"
    )
    totals = report["totals"]
    assert report["schema"] == REPORT_SCHEMA
    assert totals["jobs"] == 5
    assert totals["ok"] + totals["failed"] + totals["infeasible"] + (
        totals["timeout"]
    ) == 5
    assert totals["cached"] + totals["solved"] == 5
    assert sum(totals["by_solver"].values()) == totals["ok"]
    assert totals["cache"]["misses"] >= totals["solved"]
    assert len(report["jobs"]) == 5


def test_json_round_trip(batch):
    results, cache = batch
    report = build_batch_report(results, cache=cache)
    text = report_to_json(report)
    assert text.endswith("\n")
    rebuilt = json.loads(text)
    assert rebuilt["totals"]["jobs"] == 5
    assert rebuilt["jobs"][0]["job_id"] == "job-0"


def test_text_rendering_mentions_every_job(batch):
    results, cache = batch
    report = build_batch_report(
        results, cache=cache, wall_time_s=0.5, workers=2
    )
    text = render_batch_text(report)
    for i in range(5):
        assert f"job-{i}" in text
    assert "cache" in text
    assert "ladder" in text


def test_failed_jobs_surface_their_errors():
    executor = BatchExecutor(
        workers=1,
        cache=None,
        inject_faults={"ssp": -1, "cycle_canceling": -1, "two_phase": -1},
        max_retries=0,
    )
    rng = spawn_rng(2, "report", 0)
    problem = AllocationProblem(random_lifetimes(rng, 6, 10), 2, 10)
    results = executor.map_blocks([problem], ids=["doomed"])
    report = build_batch_report(results)
    assert report["totals"]["failed"] == 1
    text = render_batch_text(report)
    assert "doomed" in text and "injected fault" in text
