"""Batch executor: caching, fault tolerance, the parallel path."""

import pytest

from repro.core import allocate
from repro.core.problem import AllocationProblem
from repro.exceptions import ServiceError
from repro.service import BatchExecutor, ResultCache
from repro.workloads.random_blocks import random_lifetimes, spawn_rng
from tests.conftest import make_lifetime


def small_problem() -> AllocationProblem:
    lifetimes = {
        "a": make_lifetime("a", 1, (3, 5)),
        "b": make_lifetime("b", 2, 4),
        "c": make_lifetime("c", 3, 6, live_out=True),
    }
    return AllocationProblem(lifetimes, 2, 6)


def random_batch(count: int, seed: int = 7) -> list[AllocationProblem]:
    problems = []
    for case in range(count):
        rng = spawn_rng(seed, "batch", case)
        lifetimes = random_lifetimes(rng, 8, 12)
        problems.append(AllocationProblem(lifetimes, 3, 12))
    return problems


def test_serial_batch_matches_direct_solve():
    problem = small_problem()
    executor = BatchExecutor(workers=1, cache=ResultCache())
    job_id = executor.submit(problem, job_id="small")
    assert job_id == "small"
    result = executor.gather()[0]
    assert result.ok and not result.cached
    assert result.solver == "ssp"
    assert result.objective == pytest.approx(allocate(problem).objective)
    assert result.worker is not None


def test_repeat_batch_is_cache_served_with_identical_energies():
    problems = random_batch(20)
    cache = ResultCache()
    executor = BatchExecutor(workers=1, cache=cache)
    first = executor.map_blocks(problems)
    hits_before = cache.stats()["hits"]
    second = executor.map_blocks(problems)
    assert all(result.ok for result in first + second)
    assert all(result.cached for result in second)
    second_run_rate = (cache.stats()["hits"] - hits_before) / len(problems)
    assert second_run_rate >= 0.9
    for before, after in zip(first, second):
        assert before.objective == after.objective  # byte-identical
        assert before.summary.residency == after.summary.residency


def test_fault_injected_batch_completes_via_fallback():
    problems = random_batch(100)
    executor = BatchExecutor(
        workers=2,
        cache=ResultCache(),
        chunksize=10,
        inject_faults={"ssp": -1},
        backoff_base=0.0,
    )
    results = executor.map_blocks(problems)
    assert len(results) == 100
    assert all(result.status in ("ok", "infeasible") for result in results)
    solved = [result for result in results if result.ok]
    assert solved, "batch produced no solutions at all"
    assert all(result.solver == "cycle_canceling" for result in solved)
    assert all(result.fallbacks >= 1 for result in solved)


def test_pool_and_serial_paths_agree():
    problems = random_batch(12, seed=11)
    serial = BatchExecutor(workers=1, cache=None).map_blocks(problems)
    pooled = BatchExecutor(
        workers=2, cache=None, chunksize=4
    ).map_blocks(problems)
    assert [r.status for r in serial] == [r.status for r in pooled]
    for left, right in zip(serial, pooled):
        assert left.objective == right.objective


def test_results_keep_submission_order_and_ids():
    problems = random_batch(6, seed=3)
    executor = BatchExecutor(workers=1, cache=ResultCache())
    results = executor.map_blocks(
        problems, ids=[f"case-{i}" for i in range(6)]
    )
    assert [result.job_id for result in results] == [
        f"case-{i}" for i in range(6)
    ]
    assert [result.index for result in results] == list(range(6))


def test_duplicate_instances_inside_one_batch_hit_the_cache():
    problem = small_problem()
    executor = BatchExecutor(workers=1, cache=ResultCache())
    results = executor.map_blocks([problem, problem, problem])
    # The first gather resolves all three; the first solve populates the
    # cache only after the batch, so hits land on identical keys via the
    # canonical lookup in the *next* gather.
    assert all(result.ok for result in results)
    repeat = executor.map_blocks([problem])
    assert repeat[0].cached


def test_exhausted_ladder_is_a_job_failure_not_a_crash():
    executor = BatchExecutor(
        workers=1,
        cache=None,
        inject_faults={"ssp": -1, "cycle_canceling": -1, "two_phase": -1},
        max_retries=0,
    )
    result = executor.map_blocks([small_problem()])[0]
    assert result.status == "failed"
    assert result.summary is None
    assert "injected fault" in result.error


def test_failed_jobs_are_not_cached():
    cache = ResultCache()
    executor = BatchExecutor(
        workers=1,
        cache=cache,
        inject_faults={"ssp": -1, "cycle_canceling": -1, "two_phase": -1},
        max_retries=0,
    )
    executor.map_blocks([small_problem()])
    assert len(cache) == 0


def test_certify_fraction_samples_jobs():
    executor = BatchExecutor(
        workers=1, cache=None, certify_fraction=1.0, seed=5
    )
    result = executor.map_blocks([small_problem()])[0]
    assert result.ok and result.certified


def test_lint_gate_failure_becomes_a_job_failure():
    from repro.energy import MemoryConfig

    # RA405: restricted memory at 3.3 V while the model still charges
    # memory at the nominal 5 V — a warning-severity finding.
    problem = AllocationProblem(
        {
            "a": make_lifetime("a", 1, 3),
            "b": make_lifetime("b", 2, 5),
        },
        1,
        6,
        memory=MemoryConfig(divisor=2, voltage=3.3),
    )
    executor = BatchExecutor(workers=1, cache=None, lint="warning")
    result = executor.map_blocks([problem])[0]
    assert result.status == "failed"
    assert "lint" in (result.error or "").lower()


def test_invalid_parameters_rejected():
    with pytest.raises(ServiceError, match="workers"):
        BatchExecutor(workers=0)
    with pytest.raises(ServiceError, match="chunksize"):
        BatchExecutor(chunksize=0)
    with pytest.raises(ServiceError, match="fraction"):
        BatchExecutor(certify_fraction=1.5)
    with pytest.raises(ServiceError, match="timeout"):
        BatchExecutor(timeout=-1.0)
    with pytest.raises(ServiceError, match="retries"):
        BatchExecutor(max_retries=-1)


def test_job_result_to_dict_is_json_ready():
    import json

    executor = BatchExecutor(workers=1, cache=None)
    result = executor.map_blocks([small_problem()])[0]
    data = json.loads(json.dumps(result.to_dict()))
    assert data["status"] == "ok"
    assert data["objective"] == pytest.approx(result.objective)


def test_warm_cache_rides_the_inline_path_with_identical_results():
    from repro import obs
    from repro.flow.warm_start import WarmStartCache
    from repro.service.manifest import parse_manifest

    def sweep_manifest(voltage: float) -> dict:
        return {
            "schema": "repro.service/manifest/v1",
            "jobs": [
                {
                    "kind": "kernel",
                    "name": "fir",
                    "taps": 8,
                    "registers": 4,
                    "voltage": voltage,
                }
            ],
        }

    voltages = (5.0, 4.0, 3.0)
    warm_cache = WarmStartCache()
    executor = BatchExecutor(workers=1, cache=None, warm_cache=warm_cache)
    with obs.collect() as trace:
        warm = [
            executor.map_blocks(
                [w.problem for w in parse_manifest(sweep_manifest(v)).build()]
            )[0]
            for v in voltages
        ]
    assert trace.counters["solver.warm_start.cold"] == 1
    assert trace.counters["solver.warm_start.incremental"] == len(voltages) - 1

    # Identical energies to cold solves (fresh executor, no warm cache).
    for voltage, warmed in zip(voltages, warm):
        cold_executor = BatchExecutor(workers=1, cache=None)
        cold = cold_executor.map_blocks(
            [
                w.problem
                for w in parse_manifest(sweep_manifest(voltage)).build()
            ]
        )[0]
        assert warmed.ok and cold.ok
        # Byte-identical energies; the allocation itself may be a
        # different vertex of the same optimal face (degenerate optima).
        assert warmed.objective == cold.objective
        assert warmed.summary.mem_accesses == cold.summary.mem_accesses
        assert warmed.summary.reg_accesses == cold.summary.reg_accesses


def test_warm_cache_is_not_shipped_to_pool_workers():
    from repro.flow.warm_start import WarmStartCache

    executor = BatchExecutor(workers=2, cache=None, warm_cache=WarmStartCache())
    results = executor.map_blocks(random_batch(4))
    assert all(result.ok for result in results)
