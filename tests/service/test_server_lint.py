"""Admission-time lint gating over HTTP: the serving acceptance bars.

* a corrupted manifest POSTed to ``/v1/batch`` is rejected ``422`` with
  a SARIF body carrying RA6xx proof evidence, and **zero** flow solves
  happen for it;
* re-POSTing a clean manifest shows ``service.lint.cache_hit >= 1`` on
  ``/metrics`` (verdicts are cached by digest + schedule fingerprint);
* ``POST /v1/lint`` analyses without solving and always answers 200;
* ``--admission-lint never`` lints without rejecting, ``off`` disables
  the gate.
"""

from __future__ import annotations

from repro.service.server import ServerConfig

from .conftest import ServerHarness, tiny_manifest

CORRUPTED = {
    "schema": "repro.service/manifest/v1",
    "jobs": [
        {"kind": "figure", "name": "fig3", "registers": 0, "divisor": 2}
    ],
}

CLEAN = {
    "schema": "repro.service/manifest/v1",
    "jobs": [
        {"kind": "kernel", "name": "fir", "taps": 6, "seed": 3,
         "registers": 4}
    ],
}


def _counters(harness) -> dict:
    status, metrics = harness.get_json("/metrics")
    assert status == 200
    return metrics["counters"]


def test_corrupted_manifest_rejected_422_with_sarif_and_no_solve():
    with ServerHarness(ServerConfig()) as harness:
        status, _, body = harness.post_json("/v1/batch", CORRUPTED)
        assert status == 422
        assert "rejected" in body["error"]
        assert body["rejected_jobs"] == ["fig3"]
        sarif = body["sarif"]
        assert sarif["version"] == "2.1.0"
        assert len(sarif["runs"]) == 1
        results = sarif["runs"][0]["results"]
        rule_ids = {r["ruleId"] for r in results}
        assert "RA601" in rule_ids
        proof = next(r for r in results if r["ruleId"] == "RA601")
        evidence = proof["properties"]["evidence"]
        assert evidence["checked"] is True
        assert evidence["required"] > evidence["available"]

        counters = _counters(harness)
        assert counters.get("solver.flow_solve.calls", 0) == 0
        assert counters["service.lint.rejected_requests"] == 1
        status, metrics = harness.get_json("/metrics")
        assert metrics["lint"]["blocked"] >= 1


def test_repeated_clean_manifest_hits_the_lint_cache():
    with ServerHarness(ServerConfig()) as harness:
        status1, _, report1 = harness.post_json("/v1/batch", CLEAN)
        status2, _, report2 = harness.post_json("/v1/batch", CLEAN)
        assert status1 == status2 == 200
        assert report1["totals"]["ok"] == report2["totals"]["ok"] == 1
        assert report2["totals"]["cached"] == 1
        counters = _counters(harness)
        assert counters["service.lint.cache_hit"] >= 1


def test_lint_endpoint_analyses_without_solving():
    with ServerHarness(ServerConfig()) as harness:
        status, _, sarif = harness.post_json("/v1/lint", CORRUPTED)
        assert status == 200
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["properties"]["job"] == "fig3"
        assert run["properties"]["blocking"] is True
        assert any(r["ruleId"] == "RA601" for r in run["results"])
        counters = _counters(harness)
        assert counters.get("solver.flow_solve.calls", 0) == 0
        assert counters["service.lint.requests"] == 1


def test_lint_endpoint_get_is_rejected():
    with ServerHarness(ServerConfig()) as harness:
        status, _, _ = harness.request("GET", "/v1/lint")
        assert status == 405


def test_admission_lint_never_reports_but_serves():
    with ServerHarness(ServerConfig(admission_lint="never")) as harness:
        status, _, report = harness.post_json("/v1/batch", CORRUPTED)
        # "never" still lints (verdicts cached and metered) but the
        # request proceeds; the solver then reports infeasibility.
        assert status == 200
        assert report["totals"]["rejected"] == 0
        assert report["totals"]["infeasible"] == 1
        counters = _counters(harness)
        assert counters["service.lint.checked"] >= 1
        assert "service.lint.rejected_requests" not in counters


def test_admission_lint_off_disables_the_gate():
    with ServerHarness(ServerConfig(admission_lint=None)) as harness:
        status, _, report = harness.post_json("/v1/batch", CORRUPTED)
        assert status == 200
        assert report["totals"]["infeasible"] == 1
        counters = _counters(harness)
        assert "service.lint.checked" not in counters


def test_clean_tiny_manifest_passes_the_gate():
    with ServerHarness(ServerConfig()) as harness:
        status, _, report = harness.post_json("/v1/batch", tiny_manifest())
        assert status == 200
        assert report["totals"]["ok"] == report["totals"]["jobs"]
