"""Result cache: LRU discipline, disk store, corruption handling."""

import json

import pytest

from repro.exceptions import ServiceError
from repro.service.cache import CachedResult, ResultCache


def entry(key: str, objective: float = 10.0) -> CachedResult:
    return CachedResult(
        key=key,
        solver="ssp",
        exact=True,
        objective=objective,
        mem_accesses=2,
        reg_accesses=3,
        registers_used=1,
        unused_registers=0,
        address_count=1,
        residency=(("x0", 0, 0),),
        memory_addresses=(("x1", 0),),
    )


def test_get_put_and_stats():
    cache = ResultCache()
    assert cache.get("sha256:aa") is None
    cache.put(entry("sha256:aa"))
    hit = cache.get("sha256:aa")
    assert hit is not None and hit.objective == 10.0
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_lru_evicts_least_recently_used():
    cache = ResultCache(capacity=2)
    cache.put(entry("sha256:aa"))
    cache.put(entry("sha256:bb"))
    assert cache.get("sha256:aa") is not None  # promote aa
    cache.put(entry("sha256:cc"))  # evicts bb
    assert cache.get("sha256:bb") is None
    assert cache.get("sha256:aa") is not None
    assert cache.get("sha256:cc") is not None
    assert len(cache) == 2


def test_disk_store_round_trip(tmp_path):
    first = ResultCache(directory=tmp_path / "store")
    first.put(entry("sha256:aa", objective=42.5))
    # A fresh cache over the same directory serves the entry from disk.
    second = ResultCache(directory=tmp_path / "store")
    hit = second.get("sha256:aa")
    assert hit is not None
    assert hit.objective == 42.5
    assert hit.residency == (("x0", 0, 0),)
    assert second.stats()["hits"] == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    store = tmp_path / "store"
    cache = ResultCache(directory=store)
    cache.put(entry("sha256:aa"))
    path = store / "aa.json"
    path.write_text("{not json", encoding="utf-8")
    fresh = ResultCache(directory=store)
    assert fresh.get("sha256:aa") is None
    assert fresh.stats()["misses"] == 1


def test_mismatched_key_on_disk_is_a_miss(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    data = entry("sha256:other").to_dict()
    (store / "aa.json").write_text(json.dumps(data), encoding="utf-8")
    cache = ResultCache(directory=store)
    assert cache.get("sha256:aa") is None


def test_entry_round_trip_and_remap():
    original = entry("sha256:aa")
    rebuilt = CachedResult.from_dict(original.to_dict())
    assert rebuilt == original
    remapped = original.remap({"x0": "alpha", "x1": "beta"})
    assert remapped.residency == (("alpha", 0, 0),)
    assert remapped.memory_addresses == (("beta", 0),)


def test_malformed_entry_rejected():
    with pytest.raises(ServiceError, match="schema"):
        CachedResult.from_dict({"schema": "nope"})
    bad = entry("sha256:aa").to_dict()
    del bad["objective"]
    with pytest.raises(ServiceError, match="malformed"):
        CachedResult.from_dict(bad)


def test_bad_capacity_rejected():
    with pytest.raises(ServiceError, match="capacity"):
        ResultCache(capacity=0)
