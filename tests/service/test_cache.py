"""Result cache: LRU discipline, disk store, sharding, concurrency.

The second half of this module is the sharded-cache concurrency
battery: several worker *processes* hammering one store directory with
overlapping canonical keys must never lose an update (every key ends up
on disk, readable), never publish a torn entry (every shard file parses
as a complete ``repro.service/cache-entry/v1`` document), and keep the
hit-rate accounting consistent with what callers observed.
"""

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.exceptions import ServiceError
from repro.service.cache import CachedResult, ResultCache, ShardedResultCache


def entry(key: str, objective: float = 10.0) -> CachedResult:
    return CachedResult(
        key=key,
        solver="ssp",
        exact=True,
        objective=objective,
        mem_accesses=2,
        reg_accesses=3,
        registers_used=1,
        unused_registers=0,
        address_count=1,
        residency=(("x0", 0, 0),),
        memory_addresses=(("x1", 0),),
    )


def test_get_put_and_stats():
    cache = ResultCache()
    assert cache.get("sha256:aa") is None
    cache.put(entry("sha256:aa"))
    hit = cache.get("sha256:aa")
    assert hit is not None and hit.objective == 10.0
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_lru_evicts_least_recently_used():
    cache = ResultCache(capacity=2)
    cache.put(entry("sha256:aa"))
    cache.put(entry("sha256:bb"))
    assert cache.get("sha256:aa") is not None  # promote aa
    cache.put(entry("sha256:cc"))  # evicts bb
    assert cache.get("sha256:bb") is None
    assert cache.get("sha256:aa") is not None
    assert cache.get("sha256:cc") is not None
    assert len(cache) == 2


def test_disk_store_round_trip(tmp_path):
    first = ResultCache(directory=tmp_path / "store")
    first.put(entry("sha256:aa", objective=42.5))
    # A fresh cache over the same directory serves the entry from disk.
    second = ResultCache(directory=tmp_path / "store")
    hit = second.get("sha256:aa")
    assert hit is not None
    assert hit.objective == 42.5
    assert hit.residency == (("x0", 0, 0),)
    assert second.stats()["hits"] == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    store = tmp_path / "store"
    cache = ResultCache(directory=store)
    cache.put(entry("sha256:aa"))
    path = store / "aa.json"
    path.write_text("{not json", encoding="utf-8")
    fresh = ResultCache(directory=store)
    assert fresh.get("sha256:aa") is None
    assert fresh.stats()["misses"] == 1


def test_mismatched_key_on_disk_is_a_miss(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    data = entry("sha256:other").to_dict()
    (store / "aa.json").write_text(json.dumps(data), encoding="utf-8")
    cache = ResultCache(directory=store)
    assert cache.get("sha256:aa") is None


def test_entry_round_trip_and_remap():
    original = entry("sha256:aa")
    rebuilt = CachedResult.from_dict(original.to_dict())
    assert rebuilt == original
    remapped = original.remap({"x0": "alpha", "x1": "beta"})
    assert remapped.residency == (("alpha", 0, 0),)
    assert remapped.memory_addresses == (("beta", 0),)


def test_malformed_entry_rejected():
    with pytest.raises(ServiceError, match="schema"):
        CachedResult.from_dict({"schema": "nope"})
    bad = entry("sha256:aa").to_dict()
    del bad["objective"]
    with pytest.raises(ServiceError, match="malformed"):
        CachedResult.from_dict(bad)


def test_bad_capacity_rejected():
    with pytest.raises(ServiceError, match="capacity"):
        ResultCache(capacity=0)


# ---------------------------------------------------------------------------
# ShardedResultCache: layout, fallback, validation
# ---------------------------------------------------------------------------


def test_sharded_layout_places_entries_by_digest_prefix(tmp_path):
    store = tmp_path / "store"
    cache = ShardedResultCache(directory=store, shard_width=2)
    cache.put(entry("sha256:abcdef", objective=7.0))
    cache.put(entry("sha256:ab0000", objective=8.0))
    cache.put(entry("sha256:ff1234", objective=9.0))
    assert cache.shard_for("sha256:abcdef") == "ab"
    assert (store / "ab" / "abcdef.json").is_file()
    assert (store / "ab" / "ab0000.json").is_file()
    assert (store / "ff" / "ff1234.json").is_file()
    stats = cache.stats()
    assert stats["shards"] == 2
    assert stats["disk_entries"] == 3


def test_sharded_cache_round_trips_through_a_fresh_process_view(tmp_path):
    store = tmp_path / "store"
    ShardedResultCache(directory=store).put(entry("sha256:aa", objective=3.5))
    fresh = ShardedResultCache(directory=store)
    hit = fresh.get("sha256:aa")
    assert hit is not None and hit.objective == 3.5
    assert fresh.stats()["hits"] == 1 and fresh.stats()["misses"] == 0


def test_sharded_cache_reads_legacy_flat_store(tmp_path):
    store = tmp_path / "store"
    # A pre-sharding run wrote the flat layout.
    ResultCache(directory=store).put(entry("sha256:aa", objective=11.0))
    sharded = ShardedResultCache(directory=store)
    hit = sharded.get("sha256:aa")
    assert hit is not None and hit.objective == 11.0


def test_sharded_cache_validation():
    with pytest.raises(ServiceError, match="directory"):
        ShardedResultCache()
    with pytest.raises(ServiceError, match="shard_width"):
        ShardedResultCache(directory="x", shard_width=0)
    with pytest.raises(ServiceError, match="shard_width"):
        ShardedResultCache(directory="x", shard_width=5)


# ---------------------------------------------------------------------------
# multiprocess concurrency: no lost updates, no torn files
# ---------------------------------------------------------------------------

#: Overlapping key set shared by every hammer worker: every worker
#: writes and reads every key, so all writers collide on all files.
_HAMMER_KEYS = tuple(
    f"sha256:{digest:02x}{'00' * 7}{digest:02x}" for digest in range(24)
)


def _expected_objective(key: str) -> float:
    """Deterministic per-key payload: lost/torn writes become visible."""
    return float(int(key.split(":", 1)[1][:2], 16)) + 0.25


def _hammer_worker(store: str, rounds: int, worker: int) -> tuple[int, int]:
    """One process: interleaved puts and gets over every shared key.

    Returns ``(lookups, hits)`` so the parent can check that this
    worker's own accounting reconciles (a get either hits or misses —
    corrupt intermediate states would surface as exceptions instead).
    """
    cache = ShardedResultCache(directory=store, capacity=8)
    lookups = hits = 0
    for round_index in range(rounds):
        for offset, key in enumerate(_HAMMER_KEYS):
            if (offset + round_index + worker) % 2 == 0:
                cache.put(entry(key, objective=_expected_objective(key)))
            else:
                lookups += 1
                found = cache.get(key)
                if found is not None:
                    hits += 1
                    assert found.key == key
                    assert found.objective == _expected_objective(key)
    return lookups, hits


def test_concurrent_processes_never_lose_or_tear_updates(tmp_path):
    store = tmp_path / "store"
    workers = 4
    context = multiprocessing.get_context("fork")
    with context.Pool(workers) as pool:
        accounts = pool.starmap(
            _hammer_worker,
            [(str(store), 6, worker) for worker in range(workers)],
        )

    # Every worker's own accounting reconciles.
    for lookups, hits in accounts:
        assert 0 <= hits <= lookups

    # No lost updates: every key is present, complete and correct.
    survivor = ShardedResultCache(directory=store)
    for key in _HAMMER_KEYS:
        found = survivor.get(key)
        assert found is not None, f"lost update for {key}"
        assert found.key == key
        assert found.objective == _expected_objective(key)
    stats = survivor.stats()
    assert stats["hits"] == len(_HAMMER_KEYS)
    assert stats["misses"] == 0
    assert stats["hit_rate"] == 1.0
    assert stats["disk_entries"] == len(_HAMMER_KEYS)

    # No torn files: every published file is complete valid JSON, and
    # no temporary file leaked past its atomic rename.
    published = list(Path(store).rglob("*.json"))
    assert len(published) == len(_HAMMER_KEYS)
    for path in published:
        document = json.loads(path.read_text(encoding="utf-8"))
        rebuilt = CachedResult.from_dict(document)
        assert rebuilt.objective == _expected_objective(rebuilt.key)
    assert list(Path(store).rglob("*.tmp")) == []
