"""Manifest schema v2: the ``storage`` operating-point key."""

import json

import pytest

from repro.core.storage import StorageSpec
from repro.exceptions import ServiceError
from repro.service import load_manifest
from repro.service.manifest import SCHEMA_V1, SCHEMA_V2, parse_manifest


def write_manifest(tmp_path, document) -> str:
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


def test_v1_documents_parse_verbatim(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": SCHEMA_V1,
            "jobs": [{"kind": "figure", "name": "fig3", "registers": 2}],
        },
    )
    manifest = load_manifest(path)
    assert manifest.schema == SCHEMA_V1
    [workload] = manifest.build()
    assert workload.problem.storage is None


def test_v1_rejects_storage_jobs_naming_v2():
    document = {
        "schema": SCHEMA_V1,
        "jobs": [
            {"kind": "figure", "name": "fig3",
             "storage": {"banks": 2, "period": 2}},
        ],
    }
    with pytest.raises(ServiceError, match="manifest/v2"):
        parse_manifest(document)


def test_v1_rejects_storage_defaults_naming_v2():
    document = {
        "schema": SCHEMA_V1,
        "defaults": {"storage": {"banks": 2, "period": 2}},
        "jobs": [{"kind": "figure", "name": "fig3"}],
    }
    with pytest.raises(ServiceError, match="defaults"):
        parse_manifest(document)


def test_v2_banked_shorthand_builds_hierarchy(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": SCHEMA_V2,
            "jobs": [
                {"kind": "figure", "name": "fig3", "registers": 2,
                 "storage": {"banks": 2, "period": 2, "ports": 1}},
            ],
        },
    )
    [workload] = load_manifest(path).build()
    storage = workload.problem.storage
    assert storage is not None
    assert len(storage.banks) == 2
    assert all(b.ports == 1 and b.divisor == 2 for b in storage.banks)
    # The energy model is charged at the hierarchy's reference supply.
    assert workload.problem.energy_model.mem_voltage == pytest.approx(
        storage.reference.voltage
    )
    assert workload.problem.memory.divisor == 2


def test_v2_accepts_full_storage_document(tmp_path):
    spec = StorageSpec.banked(2, 2, capacity=3)
    path = write_manifest(
        tmp_path,
        {
            "schema": SCHEMA_V2,
            "jobs": [
                {"kind": "figure", "name": "fig1", "registers": 2,
                 "storage": spec.to_dict()},
            ],
        },
    )
    [workload] = load_manifest(path).build()
    assert workload.problem.storage == spec


def test_v2_storage_round_trips_through_job_params(tmp_path):
    spec = StorageSpec.banked(3, 2, ports=2, capacity=1, stagger=False)
    path = write_manifest(
        tmp_path,
        {
            "schema": SCHEMA_V2,
            "jobs": [
                {"kind": "figure", "name": "fig4", "registers": 2,
                 "storage": json.loads(json.dumps(spec.to_dict()))},
            ],
        },
    )
    [workload] = load_manifest(path).build()
    assert workload.problem.storage == spec
    assert workload.problem.storage.to_dict() == spec.to_dict()


def test_v2_storage_in_defaults_applies_to_all_jobs(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": SCHEMA_V2,
            "defaults": {"storage": {"banks": 2, "period": 2}},
            "jobs": [
                {"kind": "figure", "name": "fig3", "registers": 2},
                {"kind": "kernel", "name": "fir", "taps": 4,
                 "registers": 4},
            ],
        },
    )
    workloads = load_manifest(path).build()
    assert all(len(w.problem.storage.banks) == 2 for w in workloads)


def test_v2_without_storage_matches_v1_build(tmp_path):
    job = {"kind": "figure", "name": "fig3", "registers": 2}
    v1 = load_manifest(
        write_manifest(tmp_path, {"schema": SCHEMA_V1, "jobs": [job]})
    ).build()
    v2_dir = tmp_path / "v2"
    v2_dir.mkdir()
    v2 = load_manifest(
        write_manifest(v2_dir, {"schema": SCHEMA_V2, "jobs": [job]})
    ).build()
    assert v1[0].problem.register_count == v2[0].problem.register_count
    assert v1[0].problem.lifetimes.keys() == v2[0].problem.lifetimes.keys()
    assert v2[0].problem.storage is None


def test_bad_storage_values_are_service_errors(tmp_path):
    for bad in ("not-an-object", {"banks": 0, "period": 2},
                {"banks": 2, "period": "x"}):
        document = {
            "schema": SCHEMA_V2,
            "jobs": [
                {"kind": "figure", "name": "fig3", "storage": bad},
            ],
        }
        with pytest.raises(ServiceError):
            load_manifest(write_manifest(tmp_path, document)).build()


def test_unknown_schema_rejected():
    with pytest.raises(ServiceError, match="schema"):
        parse_manifest(
            {"schema": "repro.service/manifest/v3", "jobs": [{}]}
        )
