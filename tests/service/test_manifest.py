"""Manifest parsing, validation and workload materialisation."""

import json

import pytest

from repro.energy import PairwiseSwitchingModel
from repro.exceptions import ServiceError
from repro.service import load_manifest
from repro.workloads import dumps
from repro.workloads.registry import kernel_block
from repro.core.problem import AllocationProblem
from repro.scheduling import list_schedule


def write_manifest(tmp_path, document) -> str:
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


def test_kernel_and_figure_jobs_build(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": "repro.service/manifest/v1",
            "defaults": {"seed": 2024},
            "jobs": [
                {"kind": "kernel", "name": "fir", "taps": 8,
                 "registers": 4},
                {"kind": "figure", "name": "fig3"},
            ],
        },
    )
    workloads = load_manifest(path).build()
    assert [w.label for w in workloads] == ["fir", "fig3"]
    assert workloads[0].problem.register_count == 4
    assert isinstance(
        workloads[1].problem.energy_model, PairwiseSwitchingModel
    )


def test_random_jobs_replicate_with_derived_seeds(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": "repro.service/manifest/v1",
            "jobs": [
                {"kind": "random", "count": 3, "variables": 6,
                 "horizon": 10, "seed": 1, "registers": 2},
            ],
        },
    )
    workloads = load_manifest(path).build()
    assert [w.label for w in workloads] == [
        "random#0", "random#1", "random#2",
    ]
    # Replicas are independent draws, not copies.
    lifetime_sets = [
        tuple(
            (lt.write_time, lt.read_times)
            for lt in w.problem.lifetimes.values()
        )
        for w in workloads
    ]
    assert len(set(lifetime_sets)) > 1
    # Deterministic: re-building yields the same instances.
    again = load_manifest(path).build()
    assert [
        tuple(
            (lt.write_time, lt.read_times)
            for lt in w.problem.lifetimes.values()
        )
        for w in again
    ] == lifetime_sets


def test_instance_jobs_resolve_relative_to_the_manifest(tmp_path):
    block = kernel_block("fir", taps=4, seed=1)
    schedule = list_schedule(block)
    problem = AllocationProblem.from_schedule(schedule, register_count=3)
    (tmp_path / "cases").mkdir()
    (tmp_path / "cases" / "fir4.json").write_text(
        dumps(problem), encoding="utf-8"
    )
    path = write_manifest(
        tmp_path,
        {
            "schema": "repro.service/manifest/v1",
            "jobs": [{"kind": "instance", "path": "cases/fir4.json"}],
        },
    )
    workloads = load_manifest(path).build()
    assert workloads[0].label == "fir4"
    assert workloads[0].problem.register_count == 3


def test_defaults_merge_under_job_overrides(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": "repro.service/manifest/v1",
            "defaults": {"registers": 2, "divisor": 2},
            "jobs": [
                {"kind": "random", "variables": 4, "horizon": 8,
                 "seed": 0},
                {"kind": "random", "variables": 4, "horizon": 8,
                 "seed": 0, "registers": 5, "divisor": 1},
            ],
        },
    )
    first, second = load_manifest(path).build()
    assert first.problem.register_count == 2
    assert first.problem.memory.restricted
    assert second.problem.register_count == 5
    assert not second.problem.memory.restricted


@pytest.mark.parametrize(
    "document, match",
    [
        ({"schema": "nope", "jobs": [{"kind": "figure", "name": "fig3"}]},
         "schema"),
        ({"schema": "repro.service/manifest/v1", "jobs": []}, "non-empty"),
        ({"schema": "repro.service/manifest/v1",
          "jobs": [{"kind": "mystery"}]}, "unknown kind"),
        ({"schema": "repro.service/manifest/v1",
          "jobs": [{"kind": "kernel"}]}, "need a name"),
        ({"schema": "repro.service/manifest/v1",
          "jobs": [{"kind": "instance"}]}, "need a path"),
        ({"schema": "repro.service/manifest/v1",
          "jobs": [{"kind": "figure", "name": "fig3", "count": 2}]},
         "deterministic"),
        ({"schema": "repro.service/manifest/v1",
          "jobs": [{"kind": "random", "count": 0}]}, "count"),
    ],
)
def test_malformed_manifests_rejected(tmp_path, document, match):
    path = write_manifest(tmp_path, document)
    with pytest.raises(ServiceError, match=match):
        load_manifest(path)


def test_missing_file_and_bad_json_rejected(tmp_path):
    with pytest.raises(ServiceError, match="cannot read"):
        load_manifest(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{", encoding="utf-8")
    with pytest.raises(ServiceError, match="not JSON"):
        load_manifest(bad)


def test_missing_instance_file_rejected_at_build(tmp_path):
    path = write_manifest(
        tmp_path,
        {
            "schema": "repro.service/manifest/v1",
            "jobs": [{"kind": "instance", "path": "absent.json"}],
        },
    )
    with pytest.raises(ServiceError, match="cannot read instance"):
        load_manifest(path).build()


def test_repo_example_manifest_loads():
    manifest = load_manifest("examples/manifests/paper.json")
    workloads = manifest.build()
    assert len(workloads) >= 10
    labels = [w.label for w in workloads]
    assert "fig3" in labels and "rsp" in labels
