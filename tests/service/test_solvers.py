"""Ladder semantics: retries, fallbacks, infeasibility, summaries."""

import pytest

from repro.core import allocate
from repro.core.problem import AllocationProblem
from repro.energy import MemoryConfig
from repro.exceptions import ServiceError
from repro.service import canonicalize, run_ladder
from repro.service.solvers import SolveSummary
from tests.conftest import make_lifetime


@pytest.fixture
def problem() -> AllocationProblem:
    lifetimes = {
        "a": make_lifetime("a", 1, (3, 5)),
        "b": make_lifetime("b", 2, 4),
        "c": make_lifetime("c", 3, 6, live_out=True),
        "d": make_lifetime("d", 4, 6),
    }
    return AllocationProblem(lifetimes, 2, 6)


def test_happy_path_uses_first_rung(problem):
    outcome = run_ladder(problem)
    assert outcome.status == "ok"
    assert outcome.summary.solver == "ssp"
    assert outcome.summary.exact
    assert outcome.retries == 0 and outcome.fallbacks == 0
    assert outcome.attempts == [
        {"solver": "ssp", "attempt": 1, "error": None}
    ]
    assert outcome.summary.objective == pytest.approx(
        allocate(problem).objective
    )


def test_transient_fault_is_retried_on_the_same_rung(problem):
    naps: list[float] = []
    outcome = run_ladder(
        problem,
        inject_faults={"ssp": 1},
        max_retries=1,
        backoff_base=0.25,
        sleep=naps.append,
    )
    assert outcome.status == "ok"
    assert outcome.summary.solver == "ssp"
    assert outcome.retries == 1 and outcome.fallbacks == 0
    assert naps == [0.25]


def test_backoff_grows_exponentially_and_is_capped(problem):
    naps: list[float] = []
    run_ladder(
        problem,
        inject_faults={"ssp": -1, "cycle_canceling": -1, "two_phase": -1},
        max_retries=3,
        backoff_base=0.5,
        backoff_cap=1.5,
        sleep=naps.append,
    )
    assert naps == [0.5, 1.0, 1.5] * 3


def test_persistent_fault_falls_back_with_equal_energy(problem):
    outcome = run_ladder(problem, inject_faults={"ssp": -1})
    assert outcome.status == "ok"
    assert outcome.summary.solver == "cycle_canceling"
    assert outcome.fallbacks == 1
    assert outcome.summary.objective == pytest.approx(
        allocate(problem).objective
    )


def test_exhausted_ladder_reports_failure(problem):
    outcome = run_ladder(
        problem,
        inject_faults={"ssp": -1, "cycle_canceling": -1, "two_phase": -1},
        max_retries=0,
    )
    assert outcome.status == "failed"
    assert outcome.summary is None
    assert outcome.fallbacks == 2
    assert "injected fault" in outcome.error
    assert len(outcome.attempts) == 3


def test_infeasible_settles_immediately():
    lifetimes = {
        "u": make_lifetime("u", 2, 4),
        "v": make_lifetime("v", 2, 4),
    }
    problem = AllocationProblem(
        lifetimes, 1, 6, memory=MemoryConfig(divisor=6, voltage=2.0)
    )
    outcome = run_ladder(problem, max_retries=3)
    assert outcome.status == "infeasible"
    assert outcome.retries == 0 and outcome.fallbacks == 0
    assert len(outcome.attempts) == 1


def test_two_phase_rung_refuses_restricted_memory():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, 5),
    }
    problem = AllocationProblem(
        lifetimes, 1, 6, memory=MemoryConfig(divisor=2, voltage=3.3)
    )
    outcome = run_ladder(
        problem,
        ladder=("two_phase",),
        inject_faults=None,
        max_retries=0,
    )
    assert outcome.status == "failed"
    assert "restricted" in outcome.error


def test_two_phase_fallback_is_marked_inexact(problem):
    outcome = run_ladder(
        problem, inject_faults={"ssp": -1, "cycle_canceling": -1}
    )
    assert outcome.status == "ok"
    assert outcome.summary.solver == "two_phase"
    assert not outcome.summary.exact
    # Approximate: never better than the optimum.
    assert outcome.summary.objective >= allocate(problem).objective - 1e-9


def test_certified_flag_set_only_on_exact_rungs(problem):
    assert run_ladder(problem, certify=True).certified
    degraded = run_ladder(
        problem,
        inject_faults={"ssp": -1, "cycle_canceling": -1},
        certify=True,
    )
    assert degraded.status == "ok" and not degraded.certified


def test_unknown_rung_rejected(problem):
    with pytest.raises(ServiceError, match="unknown ladder rung"):
        run_ladder(problem, ladder=("ssp", "simplex"))


def test_summary_round_trips_through_dict_and_cache(problem):
    outcome = run_ladder(problem)
    summary = outcome.summary
    assert SolveSummary.from_dict(summary.to_dict()) == summary
    canonical = canonicalize(problem)
    rebuilt = SolveSummary.from_cached(
        summary.to_cached(canonical), canonical
    )
    assert rebuilt == summary
