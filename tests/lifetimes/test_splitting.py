"""Tests for lifetime splitting and forced-segment rules (section 5.2)."""

import pytest

from repro.exceptions import LifetimeError
from repro.lifetimes.splitting import (
    periodic_access_times,
    split_all,
    split_lifetime,
)
from tests.conftest import make_lifetime


def test_periodic_access_times():
    # Figure 1c: period 2 starting at 1 over 7 steps -> 1,3,5,7 and the
    # block-boundary slot.
    times = periodic_access_times(2, 7, offset=1)
    assert times == frozenset({1, 3, 5, 7})


def test_periodic_access_validation():
    with pytest.raises(LifetimeError):
        periodic_access_times(0, 7)
    with pytest.raises(LifetimeError):
        periodic_access_times(2, 7, offset=-1)


def test_single_read_no_access_one_segment():
    lt = make_lifetime("v", 1, 5)
    segs = split_lifetime(lt)
    assert len(segs) == 1
    seg = segs[0]
    assert (seg.start, seg.end) == (1, 5)
    assert seg.is_first and seg.is_last
    assert seg.reads == (5,)
    assert not seg.forced


def test_multi_read_splits_at_interior_reads():
    lt = make_lifetime("v", 1, (3, 5, 8))
    segs = split_lifetime(lt)
    assert [(s.start, s.end) for s in segs] == [(1, 3), (3, 5), (5, 8)]
    assert [s.reads for s in segs] == [(3,), (5,), (8,)]
    assert segs[0].is_first and not segs[0].is_last
    assert segs[-1].is_last and not segs[-1].is_first
    assert [s.index for s in segs] == [0, 1, 2]


def test_multi_read_unsplit_mode():
    lt = make_lifetime("v", 1, (3, 5, 8))
    segs = split_lifetime(lt, split_at_reads=False)
    assert len(segs) == 1
    assert segs[0].reads == (3, 5, 8)


def test_access_cut_segments():
    lt = make_lifetime("v", 2, 8)
    segs = split_lifetime(lt, access_times=frozenset({1, 3, 5, 7}))
    assert [(s.start, s.end) for s in segs] == [(2, 3), (3, 5), (5, 7), (7, 8)]
    # Only the final segment serves the read.
    assert [s.reads for s in segs] == [(), (), (), (8,)]
    assert [s.starts_at_access_cut for s in segs] == [
        False, True, True, True,
    ]


def test_forced_rules_under_restricted_access():
    access = frozenset({1, 3, 5, 7})
    # Written at 2 (not an access step): the head segment cannot reach
    # memory -> forced.
    head = split_lifetime(make_lifetime("v", 2, 8), access_times=access)
    assert head[0].forced
    assert not head[1].forced  # [3,5] lies between access steps

    # Read at 6 (not an access step): the tail segment is forced.
    tail = split_lifetime(make_lifetime("w", 1, 6), access_times=access)
    assert not tail[0].forced  # [1,5] can live in memory
    assert tail[-1].forced  # [5,6] must be in a register for the read

    # Fully aligned lifetime: nothing forced.
    ok = split_lifetime(make_lifetime("u", 1, 5), access_times=access)
    assert not any(s.forced for s in ok)


def test_fully_interior_lifetime_forced_whole():
    # Entirely between two access steps: must stay in a register.
    access = frozenset({1, 5})
    segs = split_lifetime(make_lifetime("v", 2, 4), access_times=access)
    assert len(segs) == 1
    assert segs[0].forced


def test_read_at_access_cut_not_marked_access_start():
    # A cut point that is both a read and an access step counts as a read
    # boundary (the reload piggybacks on the consumer read).
    lt = make_lifetime("v", 1, (3, 7))
    segs = split_lifetime(lt, access_times=frozenset({1, 3, 5, 7}))
    assert [(s.start, s.end) for s in segs] == [(1, 3), (3, 5), (5, 7)]
    assert not segs[1].starts_at_access_cut  # starts at the read at 3
    assert segs[2].starts_at_access_cut


def test_segments_tile_lifetime():
    lt = make_lifetime("v", 2, (4, 9))
    segs = split_lifetime(lt, access_times=frozenset({3, 6}))
    assert segs[0].start == lt.start
    assert segs[-1].end == lt.end
    for earlier, later in zip(segs, segs[1:]):
        assert earlier.end == later.start
    assert sum(s.read_count for s in segs) == lt.read_count


def test_split_all_mapping_and_iterable():
    lifetimes = {
        "a": make_lifetime("a", 1, 3),
        "b": make_lifetime("b", 2, (4, 6)),
    }
    by_map = split_all(lifetimes)
    by_iter = split_all(lifetimes.values())
    assert set(by_map) == {"a", "b"}
    assert [s.key for s in by_map["b"]] == [s.key for s in by_iter["b"]]
    assert len(by_map["b"]) == 2
