"""Tests for lifetime extraction from schedules."""

import pytest

from repro.exceptions import LifetimeError
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import BlockBuilder
from repro.ir.operations import OpCode, Operation
from repro.lifetimes.analysis import extract_lifetimes
from repro.scheduling.schedule import Schedule


def scheduled_block():
    block = BasicBlock.from_operations(
        "blk",
        [
            Operation("i0", OpCode.INPUT, output="a"),
            Operation("i1", OpCode.INPUT, output="b"),
            Operation("o0", OpCode.ADD, inputs=("a", "b"), output="c"),
            Operation("o1", OpCode.MUL, inputs=("a", "c"), output="d"),
            Operation("sink", OpCode.OUTPUT, inputs=("d",)),
        ],
        live_out=("c",),
    )
    schedule = Schedule(
        block, {"i0": 1, "i1": 1, "o0": 2, "o1": 3, "sink": 4}
    )
    return block, schedule


def test_write_and_read_times():
    _, schedule = scheduled_block()
    lifetimes = extract_lifetimes(schedule)
    a = lifetimes["a"]
    assert a.write_time == 1
    assert a.read_times == (2, 3)  # read by o0 and o1
    assert lifetimes["d"].read_times == (4,)


def test_live_out_gets_block_end_read():
    _, schedule = scheduled_block()
    lifetimes = extract_lifetimes(schedule)
    c = lifetimes["c"]
    assert c.live_out
    # block length 4, so the block-end pseudo-read is at 5.
    assert c.read_times == (3, 5)


def test_dead_variable_policies():
    b = BlockBuilder("dead")
    x = b.input("x")
    b.neg(x, name="unused")
    block = b.build()
    schedule = Schedule(block, {"op_x": 1, "op_unused": 2})

    extended = extract_lifetimes(schedule, dead_policy="extend")
    assert extended["unused"].read_times == (3,)

    dropped = extract_lifetimes(schedule, dead_policy="drop")
    assert "unused" not in dropped
    assert "x" in dropped

    with pytest.raises(LifetimeError, match="dead"):
        extract_lifetimes(schedule, dead_policy="error")


def test_multicycle_write_time():
    b = BlockBuilder("mc")
    x = b.input("x")
    z = b.input("z")
    y = b.op(OpCode.MUL, (x, z), name="y", delay=3)
    b.output(y)
    block = b.build()
    schedule = Schedule(
        block, {"op_x": 1, "op_z": 1, "op_y": 2, f"out_{y}_0": 5}
    )
    lifetimes = extract_lifetimes(schedule)
    assert lifetimes["y"].write_time == 4  # starts 2, delay 3


def test_definition_order_preserved():
    _, schedule = scheduled_block()
    assert list(extract_lifetimes(schedule)) == ["a", "b", "c", "d"]
