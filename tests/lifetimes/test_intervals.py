"""Tests for lifetimes, segments, and density machinery."""

import pytest

from repro.exceptions import LifetimeError
from repro.ir.values import DataVariable
from repro.lifetimes.intervals import (
    Lifetime,
    Segment,
    density_profile,
    max_density,
    max_density_regions,
)
from tests.conftest import make_lifetime


def test_lifetime_basics():
    lt = make_lifetime("v", 2, (4, 6))
    assert lt.start == 2
    assert lt.end == 6
    assert lt.read_count == 2
    assert lt.name == "v"


def test_reads_sorted_and_deduped():
    lt = make_lifetime("v", 1, (5, 3, 5))
    assert lt.read_times == (3, 5)


def test_read_before_write_rejected():
    with pytest.raises(LifetimeError):
        make_lifetime("v", 3, (2,))


def test_read_at_write_rejected():
    with pytest.raises(LifetimeError):
        make_lifetime("v", 3, (3,))


def test_no_reads_rejected():
    with pytest.raises(LifetimeError):
        Lifetime(DataVariable("v"), 1, ())


def test_alive_at_half_points():
    lt = make_lifetime("v", 2, 4)
    assert not lt.alive_at(1)
    assert lt.alive_at(2)
    assert lt.alive_at(3)
    assert not lt.alive_at(4)


def test_overlap_open_windows():
    a = make_lifetime("a", 1, 3)
    b = make_lifetime("b", 3, 5)  # b starts where a ends: no conflict
    c = make_lifetime("c", 2, 4)
    assert not a.overlaps(b)
    assert a.overlaps(c)
    assert c.overlaps(b)
    assert a.overlaps(a)


def test_segment_validation():
    v = DataVariable("v")
    with pytest.raises(LifetimeError, match="empty"):
        Segment(v, 0, 3, 3)
    with pytest.raises(LifetimeError, match="read"):
        Segment(v, 0, 3, 5, reads=(7,))


def test_segment_key_and_alive():
    v = DataVariable("v")
    seg = Segment(v, 1, 2, 5, reads=(5,), is_first=False)
    assert seg.key == ("v", 1)
    assert seg.alive_at(2) and seg.alive_at(4) and not seg.alive_at(5)
    assert seg.read_count == 1


def test_density_profile():
    lifetimes = [
        make_lifetime("a", 1, 3),
        make_lifetime("b", 2, 3),
        make_lifetime("c", 2, 5),
    ]
    profile = density_profile(lifetimes, 5)
    assert profile == [0, 1, 3, 1, 1, 0]
    assert max_density(lifetimes, 5) == 3


def test_density_counts_segments_like_lifetimes():
    v = DataVariable("v")
    whole = [make_lifetime("v", 1, 5)]
    split = [
        Segment(v, 0, 1, 3, reads=(3,), is_last=False),
        Segment(v, 1, 3, 5, reads=(5,), is_first=False),
    ]
    assert density_profile(whole, 5) == density_profile(split, 5)


def test_max_density_regions():
    profile = [0, 2, 2, 1, 2, 0]
    assert max_density_regions(profile) == [(1, 2), (4, 4)]


def test_max_density_regions_all_zero():
    assert max_density_regions([0, 0, 0]) == []
    assert max_density_regions([]) == []


def test_max_density_regions_run_to_end():
    assert max_density_regions([1, 3, 3]) == [(1, 2)]
