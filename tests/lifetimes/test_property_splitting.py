"""Hypothesis properties of lifetime splitting (section 5.2 rules)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lifetimes.splitting import periodic_access_times, split_lifetime
from tests.conftest import make_lifetime

HORIZON = 14


@st.composite
def lifetime_and_access(draw):
    write = draw(st.integers(min_value=1, max_value=HORIZON - 1))
    read_pool = list(range(write + 1, HORIZON + 2))
    read_count = draw(
        st.integers(min_value=1, max_value=min(4, len(read_pool)))
    )
    reads = tuple(
        sorted(
            draw(
                st.lists(
                    st.sampled_from(read_pool),
                    min_size=read_count,
                    max_size=read_count,
                    unique=True,
                )
            )
        )
    )
    live_out = reads[-1] == HORIZON + 1
    period = draw(st.integers(min_value=1, max_value=5))
    offset = draw(st.integers(min_value=0, max_value=period))
    lifetime = make_lifetime("v", write, reads, live_out=live_out)
    access = periodic_access_times(period, HORIZON, offset)
    return lifetime, access


@given(lifetime_and_access(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_segments_tile_the_lifetime(case, split_at_reads):
    lifetime, access = case
    segments = split_lifetime(
        lifetime, access_times=access, split_at_reads=split_at_reads
    )
    assert segments[0].start == lifetime.start
    assert segments[-1].end == lifetime.end
    for earlier, later in zip(segments, segments[1:]):
        assert earlier.end == later.start
    assert [s.index for s in segments] == list(range(len(segments)))
    assert segments[0].is_first and segments[-1].is_last
    assert not any(s.is_first for s in segments[1:])
    assert not any(s.is_last for s in segments[:-1])


@given(lifetime_and_access(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_every_read_served_exactly_once(case, split_at_reads):
    lifetime, access = case
    segments = split_lifetime(
        lifetime, access_times=access, split_at_reads=split_at_reads
    )
    served = [r for seg in segments for r in seg.reads]
    assert sorted(served) == list(lifetime.read_times)
    for seg in segments:
        for read in seg.reads:
            assert seg.start < read <= seg.end


@given(lifetime_and_access())
@settings(max_examples=150, deadline=None)
def test_forced_rules(case):
    lifetime, access = case
    segments = split_lifetime(lifetime, access_times=access)
    for seg in segments:
        reaches_memory = any(
            lifetime.write_time <= m <= seg.start for m in access
        )
        reads_ok = all(
            r in access or (lifetime.live_out and r == lifetime.end)
            for r in seg.reads
        )
        assert seg.forced == (not (reaches_memory and reads_ok))


@given(lifetime_and_access())
@settings(max_examples=100, deadline=None)
def test_unrestricted_never_forces(case):
    lifetime, _ = case
    for seg in split_lifetime(lifetime, access_times=None):
        assert not seg.forced
        assert not seg.starts_at_access_cut


# ---------------------------------------------------------------------------
# Section 5.2 end-to-end: forced segments carry flow lower bound 1 in the
# constructed network, for every studied access period c.
# ---------------------------------------------------------------------------

@st.composite
def lifetime_sets(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    lifetimes = {}
    for i in range(count):
        write = draw(st.integers(min_value=1, max_value=HORIZON - 1))
        read_pool = list(range(write + 1, HORIZON + 2))
        reads = tuple(
            sorted(
                draw(
                    st.lists(
                        st.sampled_from(read_pool),
                        min_size=1,
                        max_size=min(3, len(read_pool)),
                        unique=True,
                    )
                )
            )
        )
        name = f"v{i}"
        lifetimes[name] = make_lifetime(
            name, write, reads, live_out=reads[-1] == HORIZON + 1
        )
    return lifetimes


@given(lifetime_sets(), st.sampled_from((1, 2, 3, 5)))
@settings(max_examples=120, deadline=None)
def test_network_lower_bounds_match_forced_segments(lifetimes, period):
    from repro.core.network_builder import build_network
    from repro.core.problem import AllocationProblem
    from repro.energy import MemoryConfig

    problem = AllocationProblem(
        lifetimes,
        register_count=len(lifetimes),
        horizon=HORIZON + 1,
        memory=MemoryConfig(divisor=period),
    )
    built = build_network(problem)
    access = problem.access_times
    bounds = {}
    for arc in built.network.arcs:
        if arc.data and arc.data[0] == "segment":
            bounds[arc.data[1].key] = (arc.lower, arc.data[1])
    for name, segments in problem.segments.items():
        lifetime = lifetimes[name]
        for seg in segments:
            lower, _ = bounds[seg.key]
            if access is None:
                # c = 1: memory is always reachable, nothing is forced.
                assert lower == 0
                continue
            # A segment beginning or ending strictly between access
            # times (so memory cannot serve it) must be pinned to the
            # register file with flow lower bound 1.
            reaches_memory = any(
                lifetime.write_time <= m <= seg.start for m in access
            )
            reads_ok = all(
                r in access or (lifetime.live_out and r == lifetime.end)
                for r in seg.reads
            )
            assert lower == (0 if reaches_memory and reads_ok else 1)
            assert lower == (1 if problem.is_forced(seg) else 0)
